"""Scenario fuzzer: an invariant-driven random walk over spec space.

ROADMAP corpus item (b): the Scenario API made experiments *data* —
workload × arrivals × topology × control × faults as fingerprinted
specs — so edge cases in the controllers, the router, and the fault
machinery can be hunted by *sampling* that space instead of
hand-writing grids.  The pieces:

* :class:`ScenarioWalker` — a seeded random walk over
  :class:`~repro.core.scenario.ScenarioSpec` space.  Each step mutates
  a few axes of the current spec (workload refs including ``file:``
  traces, every :class:`~repro.core.arrivals.ArrivalSpec` family,
  sharded/replicated topologies, every
  :class:`~repro.core.scenario.ControlSpec` including ``ElasticMpl``,
  kill/restore/degrade fault timelines) and then reconciles the
  cross-axis rules so every emitted spec is *intended* to be valid —
  a spec the constructor rejects is itself a generator bug.  The walk
  is deterministic: same seed ⇒ same scenario sequence, fingerprint
  for fingerprint (the determinism test pins this).
* An **oracle library** (:data:`ORACLES`) run against every sampled
  scenario at small transaction counts: codec round-trip,
  ``validate()`` acceptance, transaction conservation (per-shard
  re-route transfer accounting included), exactly-once disposition
  under the resilience gate (every admission is completed, timed out,
  shed, or in flight — never two, never none), bit-identical replay,
  ``--jobs N`` invariance through the
  :class:`~repro.experiments.parallel.ParallelRunner`, and MPL/SLO
  sanity (per-shard MPL split sums to the global budget, dead shards
  hold no queued admissions).
* A **shrinker** (:func:`shrink_scenario`) that minimizes a failing
  scenario — drop fault events, shrink the topology, simplify control
  and arrivals, halve the sample — while the same oracle keeps
  failing, and a **corpus** (:func:`write_reproducer` /
  :func:`replay_corpus`) of minimized reproducers under
  ``tests/data/fuzz_corpus/`` that CI replays.

CLI face: ``python -m repro.experiments fuzz --seed 0 --iterations 50``
(see :func:`repro.experiments.__main__.fuzz_main`).
"""

from __future__ import annotations

import dataclasses
import glob
import json
import os
import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.arrivals import (
    ArrivalSpec,
    ClosedArrivals,
    ModulatedArrivals,
    OpenArrivals,
    PartlyOpenArrivals,
    PiecewiseRate,
    SinusoidRate,
    TraceArrivals,
)
from repro.core.cluster import ClusteredSystem
from repro.core.distributed import COORDINATOR_POLICIES, DistributedSpec
from repro.core.faults import DegradeShard, FaultEvent, FaultSpec, KillShard, RestoreShard
from repro.core.resilience import GoodputStarved, SHED_POLICIES, ResilienceSpec
from repro.core.scenario import (
    ElasticMpl,
    FeedbackMpl,
    MeasurementSpec,
    PerClassSlo,
    ScenarioSpec,
    ScenarioValidationError,
    StaticMpl,
    TopologySpec,
    WorkloadRef,
    run_scenario,
)
from repro.sim.random import derive_seed

#: Table 2 setups the walker draws workloads from (the CPU-bound ones:
#: cheap to simulate at fuzzing sample sizes).
SETUP_IDS = (1, 2, 3)

#: Synthetic §3.2 traces (drawn both as workloads and as arrival streams).
NAMED_TRACES = ("online-retailer", "auction-site")

#: Trace-file prefix understood by :func:`~repro.workloads.traces.get_trace`.
FILE_TRACE_PREFIX = "file:"

#: Default checked-in trace files offered to the walker (relative to the
#: repo root, which is where the CLI and the test suite run).
DEFAULT_TRACE_FILES = (
    "tests/data/trace_fixture.csv",
    "tests/data/trace_fixture.jsonl",
)

ROUTINGS = ("round_robin", "hash", "least_in_flight", "weighted")
READ_FANOUTS = ("primary", "round_robin", "least_in_flight")


class OracleFailure(AssertionError):
    """One oracle's verdict: the scenario violated an invariant."""


# ---------------------------------------------------------------------------
# the random walk
# ---------------------------------------------------------------------------


class ScenarioWalker:
    """Seeded random walk over ScenarioSpec space.

    ``next_spec()`` mutates a few axes of the current spec and
    reconciles cross-axis rules; every ``restart_every`` steps the walk
    restarts from a fresh full sample so one sticky region cannot
    trap it.  All randomness flows from one
    :func:`~repro.sim.random.derive_seed`-derived stream, so the
    sequence is a pure function of ``seed``.
    """

    AXES = ("workload", "arrival", "topology", "control", "faults",
            "resilience", "distributed", "measurement", "mix")

    def __init__(
        self,
        seed: int = 0,
        trace_files: Sequence[str] = (),
        restart_every: int = 8,
    ):
        self.rng = random.Random(derive_seed(seed, "scenario-fuzz"))
        self.trace_files = tuple(t for t in trace_files if os.path.exists(t))
        self.restart_every = max(1, restart_every)
        self.steps = 0
        self._axes = self._fresh_axes()

    # -- axis samplers -----------------------------------------------------

    def _sample_workload(self) -> WorkloadRef:
        rng = self.rng
        roll = rng.random()
        if roll < 0.6 or (roll < 0.75 and not self.trace_files):
            return WorkloadRef(setup_id=rng.choice(SETUP_IDS))
        if roll < 0.75:
            path = rng.choice(self.trace_files)
            return WorkloadRef(setup_id=None, trace=FILE_TRACE_PREFIX + path)
        return WorkloadRef(
            setup_id=None,
            trace=rng.choice(NAMED_TRACES),
            trace_transactions=rng.choice((400, 800, 1500)),
            trace_seed=rng.randrange(1000),
        )

    def _sample_arrival(self) -> Tuple[Optional[ArrivalSpec], Optional[float]]:
        """One (arrival, legacy arrival_rate) pair; at most one is set."""
        rng = self.rng
        kind = rng.choice(
            ("legacy-closed", "legacy-rate", "closed", "open",
             "partly-open", "modulated", "trace")
        )
        if kind == "legacy-closed":
            return None, None
        if kind == "legacy-rate":
            return None, round(rng.uniform(20.0, 80.0), 3)
        if kind == "closed":
            return ClosedArrivals(
                num_clients=rng.randrange(4, 33),
                think_time_s=rng.choice((0.0, 0.02, 0.1)),
            ), None
        if kind == "open":
            return OpenArrivals(rate=round(rng.uniform(20.0, 90.0), 3)), None
        if kind == "partly-open":
            return PartlyOpenArrivals(
                session_rate=round(rng.uniform(2.0, 12.0), 3),
                mean_session_length=round(rng.uniform(1.0, 6.0), 2),
                think_time_s=rng.choice((0.0, 0.02)),
            ), None
        if kind == "modulated":
            if rng.random() < 0.5:
                base = rng.uniform(30.0, 70.0)
                rate = SinusoidRate(
                    base=round(base, 3),
                    # amplitude < base: the clipped-to-zero quiet phase of a
                    # full-depth swing can stall small fuzzing windows
                    amplitude=round(rng.uniform(0.2, 0.8) * base, 3),
                    period=rng.choice((0.5, 1.0, 2.0)),
                )
            else:
                times = sorted(rng.sample((0.5, 1.0, 1.5, 2.0, 3.0),
                                          rng.randrange(1, 3)))
                points = [(0.0, round(rng.uniform(25.0, 60.0), 3))]
                points += [(t, round(rng.uniform(15.0, 80.0), 3)) for t in times]
                rate = PiecewiseRate(
                    points=tuple(points),
                    period=rng.choice((None, points[-1][0] + 1.0)),
                )
            return ModulatedArrivals(rate_function=rate), None
        # trace replay: loop=True always — a non-looping stream shorter
        # than the sample drains the simulation mid-measurement
        if self.trace_files and rng.random() < 0.4:
            name = FILE_TRACE_PREFIX + rng.choice(self.trace_files)
            return TraceArrivals(
                trace_name=name,
                time_scale=rng.choice((0.02, 0.05, 0.1)),
                loop=True,
            ), None
        return TraceArrivals(
            trace_name=rng.choice(NAMED_TRACES),
            transactions=rng.choice((300, 600)),
            seed=rng.randrange(1000),
            time_scale=rng.choice((0.25, 0.5, 1.0)),
            loop=True,
        ), None

    def _sample_topology(self) -> TopologySpec:
        rng = self.rng
        shards = rng.choice((1, 1, 2, 2, 3, 4))
        routing = rng.choice(ROUTINGS) if shards > 1 else "round_robin"
        weights: Optional[Tuple[float, ...]] = None
        if shards > 1 and rng.random() < 0.4:
            # skewed on purpose — this is what flushes split/rounding bugs
            weights = tuple(
                round(rng.choice((0.05, 0.5, 1.0, 2.0, 10.0, 250.0)), 3)
                for _ in range(shards)
            )
        replicas = rng.choice((0, 0, 0, 1, 1, 2))
        return TopologySpec(
            shards=shards,
            routing=routing,
            routing_weights=weights,
            replicas_per_shard=replicas,
            read_fanout=rng.choice(READ_FANOUTS),
            election_timeout_s=rng.choice((0.1, 0.25, 0.5)),
        )

    def _sample_control(self) -> Any:
        rng = self.rng
        kind = rng.choice(("static", "static", "static-unlimited",
                           "feedback", "slo", "elastic"))
        if kind == "static-unlimited":
            return StaticMpl(None)
        if kind == "static":
            return StaticMpl(rng.randrange(4, 25))
        if kind == "feedback":
            return FeedbackMpl(
                initial_mpl=rng.randrange(4, 17),
                window=rng.choice((20, 30)),
                baseline_transactions=rng.choice((60, 100)),
                adaptive=rng.random() < 0.7,
            )
        if kind == "slo":
            return PerClassSlo(
                high_p95_target_s=rng.choice((0.1, 0.3, 0.6)),
                initial_mpl=rng.randrange(2, 9),
                window=rng.choice((30, 50)),
                max_mpl=32,
                max_iterations=rng.choice((2, 3)),
            )
        return ElasticMpl(
            mpl=rng.randrange(6, 25),
            interval_s=rng.choice((0.2, 0.3, 0.5)),
            low_watermark=round(rng.uniform(0.05, 0.4), 3),
            high_watermark=round(rng.uniform(0.6, 0.95), 3),
        )

    def _sample_faults(self, shards: int, replicas: int) -> Optional[FaultSpec]:
        rng = self.rng
        if rng.random() < 0.5:
            return None
        events: List[FaultEvent] = []
        t = rng.uniform(0.2, 0.6)
        for _ in range(rng.randrange(1, 4)):
            shard = rng.randrange(shards)
            kind = rng.choice(("kill", "kill", "degrade", "restore"))
            if kind == "kill":
                candidate: FaultEvent = KillShard(at=round(t, 3), shard=shard)
            elif kind == "degrade":
                candidate = DegradeShard(
                    at=round(t, 3), shard=shard,
                    factor=rng.choice((0.3, 0.5, 0.8)),
                )
            else:
                candidate = RestoreShard(at=round(t, 3), shard=shard)
            if fault_timeline_is_safe(events + [candidate], shards, replicas):
                events.append(candidate)
                if isinstance(candidate, KillShard) and rng.random() < 0.6:
                    t += rng.uniform(0.2, 0.6)
                    events.append(
                        RestoreShard(at=round(t, 3), shard=candidate.shard)
                    )
            t += rng.uniform(0.2, 0.7)
        if not events:
            return None
        return FaultSpec(events=tuple(events))

    def _sample_resilience(self) -> Optional[ResilienceSpec]:
        rng = self.rng
        if rng.random() < 0.35:
            return None
        # deadlines are generous relative to fuzzing-size service times
        # (tens of milliseconds), so a resilient walk always makes
        # forward progress — goodput-zero livelock is the figure's job,
        # not the fuzzer's
        max_attempts = rng.choice((0, 0, 1, 2, 3))
        return ResilienceSpec(
            deadline_s=rng.choice((1.0, 2.0, 5.0)),
            high_deadline_s=rng.choice((None, None, 2.0, 5.0)),
            max_attempts=max_attempts,
            base_backoff_s=(
                rng.choice((0.0, 0.01, 0.05)) if max_attempts > 0 else None
            ),
            backoff_multiplier=rng.choice((1.0, 2.0)),
            jitter_fraction=rng.choice((0.0, 0.25, 0.5)),
            queue_cap=rng.choice((None, None, 8, 16, 32)),
            shed_policy=rng.choice(SHED_POLICIES),
            breaker_enabled=rng.random() < 0.35,
            breaker_window=rng.choice((5, 10, 20)),
            breaker_timeout_threshold=rng.choice((0.3, 0.5, 0.8)),
            breaker_open_s=rng.choice((0.2, 0.5, 1.0)),
        )

    def _sample_distributed(self) -> Optional[DistributedSpec]:
        rng = self.rng
        if rng.random() < 0.5:
            return None
        # abort_on_prepare_timeout stays True: a hung prepare would
        # park MPL slots forever and stall the completion-counted
        # window; the timeout-abort path is the escape hatch the walk
        # relies on (and the goodput-starvation guard turns a
        # pathological retry storm into a deterministic refusal)
        return DistributedSpec(
            cross_shard_fraction=rng.choice((0.05, 0.1, 0.2, 0.5, 1.0)),
            fanout_k=rng.randrange(2, 5),
            prepare_timeout_s=rng.choice((0.5, 1.0, 2.0, 5.0)),
            coordinator=rng.choice(COORDINATOR_POLICIES),
            abort_on_prepare_timeout=True,
        )

    def _sample_measurement(self) -> MeasurementSpec:
        rng = self.rng
        metrics: Tuple[str, ...] = ("standard",)
        if rng.random() < 0.3:
            metrics += ("percentiles",)
        if rng.random() < 0.3:
            metrics += ("timeline",)
        return MeasurementSpec(
            transactions=rng.randrange(40, 161),
            warmup_fraction=rng.choice((0.0, 0.1, 0.2)),
            metrics=metrics,
            timeline_bucket_s=rng.choice((0.25, 0.5, 1.0)),
        )

    def _sample_mix(self) -> Dict[str, Any]:
        rng = self.rng
        hpf = rng.choice((0.0, 0.0, 0.1, 0.3))
        return {
            "policy": "priority" if hpf > 0 and rng.random() < 0.7 else "fifo",
            "high_priority_fraction": hpf,
            "seed": rng.randrange(10_000),
        }

    def _fresh_axes(self) -> Dict[str, Any]:
        arrival, arrival_rate = self._sample_arrival()
        topology = self._sample_topology()
        return {
            "workload": self._sample_workload(),
            "arrival": arrival,
            "arrival_rate": arrival_rate,
            "topology": topology,
            "control": self._sample_control(),
            "faults": self._sample_faults(
                topology.shards, topology.replicas_per_shard
            ),
            "resilience": self._sample_resilience(),
            "distributed": self._sample_distributed(),
            "measurement": self._sample_measurement(),
            "mix": self._sample_mix(),
        }

    # -- reconciliation ----------------------------------------------------

    def _reconcile(self, axes: Dict[str, Any]) -> Dict[str, Any]:
        """Repair cross-axis rules after independent mutation.

        Mirrors ``ScenarioSpec.__post_init__``'s cross-field checks —
        plus the run-safety rules the constructor cannot know about
        (never kill the last live shard; no faults under a per-shard
        tuning loop, which would wait forever on a dead shard's
        completions under open arrivals).  Works on a copy: the walk's
        stored axes keep their sampled values, so an axis suppressed
        by one step's control choice (faults under ``FeedbackMpl``,
        resilience under a tuning loop) resurfaces as soon as the
        conflicting axis mutates away — repair is per-spec, not sticky.
        """
        rng = self.rng
        axes = dict(axes)
        topology: TopologySpec = axes["topology"]
        control = axes["control"]
        clustered = topology.shards > 1 or topology.replicas_per_shard > 0

        if isinstance(control, PerClassSlo):
            if topology.shards != 1 or topology.replicas_per_shard > 0:
                # a truly single-engine topology: the SLO tuning loop
                # drives one ExternalScheduler, not a cluster façade
                topology = dataclasses.replace(
                    topology, shards=1, routing="round_robin",
                    routing_weights=None, replicas_per_shard=0,
                )
                axes["topology"] = topology
                clustered = False
            if axes["mix"]["high_priority_fraction"] <= 0:
                axes["mix"] = dict(
                    axes["mix"], high_priority_fraction=rng.choice((0.1, 0.3))
                )
        if isinstance(control, ElasticMpl):
            if not clustered:
                topology = dataclasses.replace(topology, shards=2)
                axes["topology"] = topology
                clustered = True
            if control.mpl < topology.shards:
                control = dataclasses.replace(
                    control, mpl=topology.shards * rng.randrange(2, 6)
                )
                axes["control"] = control
        if isinstance(control, (StaticMpl, FeedbackMpl)):
            mpl = control.config_mpl()
            if mpl is not None and mpl < topology.shards:
                # split_mpl needs >= 1 admission per shard
                field = "mpl" if isinstance(control, StaticMpl) else "initial_mpl"
                control = dataclasses.replace(
                    control, **{field: topology.shards * rng.randrange(2, 6)}
                )
                axes["control"] = control
        if isinstance(control, FeedbackMpl):
            if clustered and control.initial_mpl is None:
                control = dataclasses.replace(
                    control, initial_mpl=max(topology.shards, 8)
                )
                axes["control"] = control
            # per-shard tuning windows wait on a single shard's
            # completions; a fault that kills that shard would stall the
            # window forever under open arrivals
            axes["faults"] = None

        resilience: Optional[ResilienceSpec] = axes["resilience"]
        if resilience is not None:
            # the resilience gate composes with static/elastic capacity
            # control; the per-shard tuning loops (feedback, SLO) run
            # baseline twins outside the gate, so the axes stay apart
            if isinstance(control, (FeedbackMpl, PerClassSlo)):
                axes["resilience"] = None
                resilience = None
        if resilience is not None and topology.replicas_per_shard > 0:
            # replica groups own their own retry story — when both axes
            # land, a coin decides which one this step keeps, so the
            # walk covers each at full strength
            if rng.random() < 0.5:
                axes["resilience"] = None
                resilience = None
            else:
                topology = dataclasses.replace(topology, replicas_per_shard=0)
                if isinstance(control, ElasticMpl) and topology.shards < 2:
                    # elastic control needs the topology to stay
                    # clustered once the replicas are gone
                    topology = dataclasses.replace(topology, shards=2)
                axes["topology"] = topology
                clustered = topology.shards > 1
        if resilience is not None and (
            resilience.breaker_enabled and topology.shards < 2
        ):
            axes["resilience"] = dataclasses.replace(
                resilience, breaker_enabled=False
            )
        resilience = axes["resilience"]
        if resilience is not None and resilience.queue_cap is not None:
            # shedding needs externally driven arrivals: a closed client
            # resubmits the instant a shed releases it (zero-time livelock)
            closed_population = axes["arrival_rate"] is None and (
                axes["arrival"] is None
                or isinstance(axes["arrival"], ClosedArrivals)
            )
            if closed_population:
                axes["resilience"] = dataclasses.replace(
                    resilience, queue_cap=None
                )

        distributed: Optional[DistributedSpec] = axes["distributed"]
        if distributed is not None:
            topology = axes["topology"]
            if topology.shards < 2 or topology.replicas_per_shard > 0:
                # 2PC needs >= 2 participant shards, and replica groups
                # own their own commit story (the constructor rejects
                # the combination)
                axes["distributed"] = None
            elif distributed.fanout_k > topology.shards:
                axes["distributed"] = dataclasses.replace(
                    distributed, fanout_k=topology.shards
                )

        faults: Optional[FaultSpec] = axes["faults"]
        if faults is not None:
            if not clustered:
                axes["faults"] = None
            else:
                events = [e for e in faults.events if e.shard < topology.shards]
                kept: List[FaultEvent] = []
                for event in events:
                    if fault_timeline_is_safe(
                        kept + [event], topology.shards,
                        topology.replicas_per_shard,
                    ):
                        kept.append(event)
                axes["faults"] = FaultSpec(events=tuple(kept)) if kept else None
        return axes

    def _build(self, axes: Dict[str, Any]) -> ScenarioSpec:
        mix = axes["mix"]
        return ScenarioSpec(
            workload=axes["workload"],
            arrival=axes["arrival"],
            topology=axes["topology"],
            control=axes["control"],
            measurement=axes["measurement"],
            policy=mix["policy"],
            high_priority_fraction=mix["high_priority_fraction"],
            arrival_rate=axes["arrival_rate"],
            seed=mix["seed"],
            tag=f"fuzz-{self.steps}",
            faults=axes["faults"],
            resilience=axes["resilience"],
            distributed=axes["distributed"],
        )

    def next_spec(self) -> ScenarioSpec:
        """The walk's next scenario (always constructor-valid)."""
        rng = self.rng
        self.steps += 1
        if self.steps % self.restart_every == 1:
            self._axes = self._fresh_axes()
        else:
            mutated = rng.sample(self.AXES, rng.randrange(1, 3))
            for axis in mutated:
                if axis == "workload":
                    self._axes["workload"] = self._sample_workload()
                elif axis == "arrival":
                    arrival, rate = self._sample_arrival()
                    self._axes["arrival"] = arrival
                    self._axes["arrival_rate"] = rate
                elif axis == "topology":
                    self._axes["topology"] = self._sample_topology()
                elif axis == "control":
                    self._axes["control"] = self._sample_control()
                elif axis == "faults":
                    topology = self._axes["topology"]
                    self._axes["faults"] = self._sample_faults(
                        topology.shards, topology.replicas_per_shard
                    )
                elif axis == "resilience":
                    self._axes["resilience"] = self._sample_resilience()
                elif axis == "distributed":
                    self._axes["distributed"] = self._sample_distributed()
                elif axis == "measurement":
                    self._axes["measurement"] = self._sample_measurement()
                else:
                    self._axes["mix"] = self._sample_mix()
        return self._build(self._reconcile(self._axes))

    def specs(self, count: int) -> List[ScenarioSpec]:
        return [self.next_spec() for _ in range(count)]


def fault_timeline_is_safe(
    events: Sequence[FaultEvent], shards: int, replicas: int
) -> bool:
    """Whether a fault timeline can never leave the router target-less.

    Conservative aliveness model: a shard with any unrestored kill is
    treated as possibly dead (with replicas a single kill only fells
    the primary, but a back-to-back double kill mid-election can still
    take the group out).  The router raises ``SimulationError`` when
    every shard is dead (administrative parking falls open to an alive
    shard, but nothing routes around a fully killed cluster), so the
    generator (and the shrinker) only emit timelines that keep at
    least one shard kill-free at every instant.
    """
    del replicas  # conservative: replicated shards treated like bare ones
    suspect = [False] * shards
    for event in sorted(events, key=lambda e: e.at):
        if isinstance(event, KillShard):
            suspect[event.shard] = True
        elif isinstance(event, RestoreShard):
            suspect[event.shard] = False
        if all(suspect):
            return False
    return True


# ---------------------------------------------------------------------------
# the oracle library
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class OracleContext:
    """Everything one scenario run produced, for the oracles to judge."""

    spec: ScenarioSpec
    system: Any = None
    outcome: Any = None
    #: Run the (expensive) ParallelRunner jobs-invariance oracle.
    check_jobs: bool = False
    #: Result-cache directory shared with the jobs oracle's runner.
    cache_dir: Optional[str] = None


def oracle_codec_roundtrip(ctx: OracleContext) -> None:
    """to_json_dict → from_json_dict must reproduce spec and fingerprint."""
    spec = ctx.spec
    payload = json.loads(json.dumps(spec.to_json_dict()))
    decoded = ScenarioSpec.from_json_dict(payload)
    if decoded != spec:
        raise OracleFailure("decoded spec differs from the original")
    if decoded.fingerprint() != spec.fingerprint():
        raise OracleFailure(
            f"fingerprint changed across the codec round-trip: "
            f"{spec.fingerprint()} -> {decoded.fingerprint()}"
        )


def oracle_validate_accepts(ctx: OracleContext) -> None:
    """validate() must accept everything the generator emits."""
    try:
        decoded = ScenarioSpec.validate(ctx.spec.to_json_dict())
    except ScenarioValidationError as exc:
        raise OracleFailure(f"validate() rejected a generated spec: {exc}")
    if decoded.fingerprint() != ctx.spec.fingerprint():
        raise OracleFailure("validate() decoded to a different fingerprint")


def oracle_conservation(ctx: OracleContext) -> None:
    """No transaction is lost or double-counted, re-routes included."""
    system, spec = ctx.system, ctx.spec
    measurement = spec.measurement
    records = len(system.collector.records)
    if records < measurement.transactions:
        raise OracleFailure(
            f"completed {records} < requested {measurement.transactions}"
        )
    if not isinstance(system, ClusteredSystem):
        return
    router = system.router
    frontends = [shard.frontend for shard in system.shards]
    # `removed` holds the admissions the resilience layer pulled back
    # out (queued deadline expiry, load shedding) — zero without it
    total_held = sum(
        f.completed + f.in_service + f.queue_length + f.removed
        for f in frontends
    )
    if router.routed != total_held:
        raise OracleFailure(
            f"router routed {router.routed} but shards hold {total_held}"
        )
    for index, frontend in enumerate(frontends):
        held = (
            frontend.completed + frontend.in_service
            + frontend.queue_length + frontend.removed
        )
        placed = (
            router.routed_by_shard[index]
            + router.rerouted_to[index]
            - router.rerouted_from[index]
        )
        if placed != held:
            raise OracleFailure(
                f"shard {index}: placed {placed} != held {held} "
                "(re-route transfer accounting broken)"
            )
        if system.shards[index].collector.arrivals != router.routed_by_shard[index]:
            raise OracleFailure(
                f"shard {index}: collector arrivals "
                f"{system.shards[index].collector.arrivals} != routed "
                f"{router.routed_by_shard[index]}"
            )
    if router.rerouted != sum(router.rerouted_from) or (
        router.rerouted != sum(router.rerouted_to)
    ):
        raise OracleFailure("re-route from/to totals disagree")


def oracle_mpl_sanity(ctx: OracleContext) -> None:
    """Split MPLs sum to the global budget; dead shards admit nothing."""
    system, spec = ctx.system, ctx.spec
    if not isinstance(system, ClusteredSystem):
        return
    frontends = [shard.frontend for shard in system.shards]
    mpls = [f.mpl for f in frontends]
    if any(m is not None and m < 1 for m in mpls):
        raise OracleFailure(f"per-shard MPL below the floor of 1: {mpls}")
    global_mpl = spec.control.config_mpl()
    if (
        isinstance(spec.control, StaticMpl)
        and global_mpl is not None
        and spec.faults is None
        and all(m is not None for m in mpls)
        and sum(mpls) != global_mpl
    ):
        raise OracleFailure(
            f"static per-shard MPLs {mpls} sum to {sum(mpls)}, "
            f"not the global {global_mpl}"
        )
    if isinstance(spec.control, ElasticMpl):
        report = ctx.outcome.control
        final = getattr(report, "final_mpls", None)
        if final and sum(final) != spec.control.mpl:
            raise OracleFailure(
                f"elastic final MPLs {final} sum to {sum(final)}, "
                f"not the global {spec.control.mpl}"
            )
    router = system.router
    for index, frontend in enumerate(frontends):
        if not router.alive[index] and frontend.queue_length != 0:
            raise OracleFailure(
                f"dead shard {index} still queues "
                f"{frontend.queue_length} admissions"
            )


def oracle_disposition(ctx: OracleContext) -> None:
    """Every admitted transaction lands in exactly one disposition.

    The resilience gate's exactly-once contract: across retries, shard
    kills, and shed queues, an admission is completed, timed out, shed,
    or still in flight — never two of those, never none.
    """
    runtime = getattr(ctx.system, "resilience", None)
    if runtime is None:
        return
    settled = runtime.completed + runtime.timed_out + runtime.shed
    if runtime.admitted != settled + runtime.in_flight:
        raise OracleFailure(
            f"admitted {runtime.admitted} != completed {runtime.completed} "
            f"+ timed_out {runtime.timed_out} + shed {runtime.shed} "
            f"+ in_flight {runtime.in_flight}"
        )
    tally: Dict[str, int] = {}
    for disposition in runtime.dispositions().values():
        tally[disposition] = tally.get(disposition, 0) + 1
    expected = {
        "completed": runtime.completed,
        "timed_out": runtime.timed_out,
        "shed": runtime.shed,
        "in_flight": runtime.in_flight,
    }
    mismatches = {
        key: (tally.get(key, 0), count)
        for key, count in expected.items()
        if tally.get(key, 0) != count
    }
    if mismatches or set(tally) - set(expected):
        raise OracleFailure(
            f"per-transaction dispositions disagree with the counters: "
            f"{mismatches or sorted(set(tally) - set(expected))}"
        )
    per_class = runtime.per_class
    for priority, admitted in per_class["admitted"].items():
        settled_class = sum(
            per_class[counter].get(priority, 0)
            for counter in ("completed", "timed_out", "shed")
        )
        if admitted < settled_class:
            raise OracleFailure(
                f"class {priority}: {settled_class} settled but only "
                f"{admitted} admitted"
            )
    # the gate only ever counts commits as completed, and the collector
    # only ever records commits the gate let through, so the gate can
    # lag the collector by at most the in-flight tail (the run stops
    # the instant the Nth record lands, before that record's gate
    # callback) — never lead it
    if runtime.completed > len(ctx.system.collector.records):
        raise OracleFailure(
            f"gate counted {runtime.completed} completions but the "
            f"collector recorded only {len(ctx.system.collector.records)}"
        )


def oracle_atomicity(ctx: OracleContext) -> None:
    """2PC atomicity: no cross-shard transaction half-commits.

    The coordinator self-checks every decision (a branch finishing
    against the decided verdict, a commit finishing with a non-committed
    branch) into ``atomicity_violations``; the oracle also audits the
    attempt ledger — every cross-shard transaction either committed
    (and left the live table) or is still live, and every launched
    attempt is settled or current.
    """
    coordinator = getattr(ctx.system, "distributed", None)
    if coordinator is None:
        return
    report = coordinator.report_jsonable()
    if report["atomicity_violations"]:
        raise OracleFailure(
            f"2PC atomicity violated: {report['atomicity_violations']}"
        )
    if report["commits"] + report["in_flight"] != report["cross_shard"]:
        raise OracleFailure(
            f"2PC ledger broken: commits {report['commits']} + in-flight "
            f"{report['in_flight']} != cross-shard {report['cross_shard']}"
        )
    settled = report["commits"] + report["aborts"]
    if not settled <= report["attempts"] <= settled + report["in_flight"]:
        raise OracleFailure(
            f"2PC attempts {report['attempts']} outside "
            f"[{settled}, {settled + report['in_flight']}] "
            f"(commits {report['commits']}, aborts {report['aborts']})"
        )


def oracle_replay(ctx: OracleContext) -> None:
    """A second run of the same spec must be bit-identical."""
    _, second = run_scenario(ctx.spec)
    first_json = json.dumps(ctx.outcome.to_json_dict(), sort_keys=True)
    second_json = json.dumps(second.to_json_dict(), sort_keys=True)
    if first_json != second_json:
        raise OracleFailure("replay produced a different outcome JSON")


def oracle_jobs_invariance(ctx: OracleContext) -> None:
    """The ParallelRunner at --jobs 2 must reproduce the direct run."""
    if not ctx.check_jobs:
        return
    from repro.experiments.runner import scenario_results

    result = scenario_results([ctx.spec], jobs=2, cache_dir=ctx.cache_dir)[0]
    direct = ctx.outcome.result
    if json.dumps(result.to_json_dict(), sort_keys=True) != json.dumps(
        direct.to_json_dict(), sort_keys=True
    ):
        raise OracleFailure("--jobs 2 run differs from the in-process run")


#: Ordered oracle library: cheap structural checks first, the
#: execution-dependent ones after (they see ``ctx.system``/``ctx.outcome``).
ORACLES: Dict[str, Callable[[OracleContext], None]] = {
    "codec-roundtrip": oracle_codec_roundtrip,
    "validate-accepts": oracle_validate_accepts,
    "conservation": oracle_conservation,
    "mpl-sanity": oracle_mpl_sanity,
    "disposition": oracle_disposition,
    "atomicity": oracle_atomicity,
    "replay": oracle_replay,
    "jobs-invariance": oracle_jobs_invariance,
}

#: Oracles that can run without executing the scenario.
_STRUCTURAL = ("codec-roundtrip", "validate-accepts")


def check_scenario(
    spec: ScenarioSpec,
    *,
    check_jobs: bool = False,
    cache_dir: Optional[str] = None,
) -> Optional[Tuple[str, str]]:
    """Run the full oracle library; ``(oracle, error)`` on first failure."""
    ctx = OracleContext(spec=spec, check_jobs=check_jobs, cache_dir=cache_dir)
    for name in _STRUCTURAL:
        try:
            ORACLES[name](ctx)
        except OracleFailure as exc:
            return name, str(exc)
    try:
        ctx.system, ctx.outcome = run_scenario(spec)
    except GoodputStarved as exc:
        # A valid spec whose completion-counted window can never fill
        # (saturated retry storm → zero steady-state goodput).  The
        # refusal is the correct behaviour, not a finding — but the
        # detection itself must replay bit-identically.
        return _check_starvation_replays(spec, str(exc))
    except Exception as exc:  # noqa: BLE001 — any crash is a finding
        return "execution", f"{type(exc).__name__}: {exc}"
    for name, oracle in ORACLES.items():
        if name in _STRUCTURAL:
            continue
        try:
            oracle(ctx)
        except OracleFailure as exc:
            return name, str(exc)
    return None


def _check_starvation_replays(
    spec: ScenarioSpec, first_error: str
) -> Optional[Tuple[str, str]]:
    """Re-run a goodput-starved spec; the refusal must be deterministic."""
    try:
        run_scenario(spec)
    except GoodputStarved as exc:
        if str(exc) == first_error:
            return None
        return "replay", (
            "goodput starvation is not deterministic: first run said "
            f"{first_error!r}, replay said {str(exc)!r}"
        )
    except Exception as exc:  # noqa: BLE001
        return "replay", (
            "goodput starvation is not deterministic: replay raised "
            f"{type(exc).__name__}: {exc}"
        )
    return "replay", (
        "goodput starvation is not deterministic: the replay finished "
        f"(first run said {first_error!r})"
    )


# ---------------------------------------------------------------------------
# the shrinker
# ---------------------------------------------------------------------------


def _shrink_candidates(spec: ScenarioSpec) -> List[ScenarioSpec]:
    """Strictly-smaller variants of ``spec``, most aggressive first.

    Invalid combinations are simply skipped (the constructor is the
    filter); fault timelines are re-checked against the liveness model
    so the shrinker never invents an all-shards-dead crash.
    """
    out: List[ScenarioSpec] = []

    def push(**changes: Any) -> None:
        try:
            candidate = dataclasses.replace(spec, **changes)
        except ValueError:
            return
        faults = candidate.faults
        if faults is not None and not fault_timeline_is_safe(
            faults.events, candidate.topology.shards,
            candidate.topology.replicas_per_shard,
        ):
            return
        out.append(candidate)

    if spec.resilience is not None:
        push(resilience=None)

        def push_resilience(**changes: Any) -> None:
            try:
                push(resilience=dataclasses.replace(spec.resilience, **changes))
            except ValueError:
                return

        if spec.resilience.breaker_enabled:
            push_resilience(breaker_enabled=False)
        if spec.resilience.queue_cap is not None:
            push_resilience(queue_cap=None)
        if spec.resilience.max_attempts > 0:
            push_resilience(max_attempts=0, base_backoff_s=None)
        if spec.resilience.jitter_fraction > 0:
            push_resilience(jitter_fraction=0.0)
        if spec.resilience.high_deadline_s is not None:
            push_resilience(high_deadline_s=None)
    if spec.distributed is not None:
        push(distributed=None)
        if spec.distributed.cross_shard_fraction > 0:
            push(distributed=dataclasses.replace(
                spec.distributed, cross_shard_fraction=0.0
            ))
        if spec.distributed.fanout_k > 2:
            push(distributed=dataclasses.replace(spec.distributed, fanout_k=2))
    if spec.faults is not None:
        push(faults=None)
        if len(spec.faults.events) > 1:
            for drop in range(len(spec.faults.events)):
                events = tuple(
                    e for i, e in enumerate(spec.faults.events) if i != drop
                )
                push(faults=FaultSpec(events=events))
    if not isinstance(spec.control, StaticMpl):
        push(control=StaticMpl(spec.control.config_mpl()), faults=None)
        push(control=StaticMpl(spec.control.config_mpl()))
    if spec.arrival is not None or spec.arrival_rate is not None:
        push(arrival=None, arrival_rate=None)
    topology = spec.topology
    if topology.replicas_per_shard > 0:
        push(topology=dataclasses.replace(topology, replicas_per_shard=0))
    if topology.shards > 1:
        smaller = max(1, topology.shards // 2)
        weights = topology.routing_weights
        push(topology=dataclasses.replace(
            topology,
            shards=smaller,
            routing="round_robin" if smaller == 1 else topology.routing,
            routing_weights=weights[:smaller] if weights else None,
        ), faults=None)
    if topology.routing_weights is not None:
        push(topology=dataclasses.replace(topology, routing_weights=None))
    measurement = spec.measurement
    if measurement.transactions > 20:
        push(measurement=dataclasses.replace(
            measurement, transactions=max(20, measurement.transactions // 2)
        ))
    if measurement.metrics != ("standard",):
        push(measurement=dataclasses.replace(measurement, metrics=("standard",)))
    if spec.high_priority_fraction > 0 and not isinstance(spec.control, PerClassSlo):
        push(high_priority_fraction=0.0, policy="fifo")
    if spec.workload != WorkloadRef():
        push(workload=WorkloadRef())
    return out


def shrink_scenario(
    spec: ScenarioSpec,
    failing_oracle: str,
    *,
    check_jobs: bool = False,
    cache_dir: Optional[str] = None,
    max_rounds: int = 6,
    log: Optional[Callable[[str], None]] = None,
) -> ScenarioSpec:
    """Greedy fixpoint shrink: keep a candidate iff the same oracle fails."""
    current = spec
    for _round in range(max_rounds):
        improved = False
        for candidate in _shrink_candidates(current):
            verdict = check_scenario(
                candidate, check_jobs=check_jobs, cache_dir=cache_dir
            )
            if verdict is not None and verdict[0] == failing_oracle:
                current = candidate
                improved = True
                if log:
                    log(f"[shrink] kept {candidate.fingerprint()[:12]} "
                        f"({verdict[0]})")
                break
        if not improved:
            return current
    return current


# ---------------------------------------------------------------------------
# the corpus
# ---------------------------------------------------------------------------

CORPUS_FORMAT = 1


def write_reproducer(
    directory: str,
    spec: ScenarioSpec,
    oracle: str,
    error: str,
    *,
    seed: Optional[int] = None,
    iteration: Optional[int] = None,
) -> str:
    """Write one minimized reproducer; returns its path.

    The entry's ``expect`` is ``"ok"``: once the underlying bug is
    fixed, replaying the spec must pass every oracle (that is the
    regression contract CI enforces).  Hand-written entries may instead
    say ``"validation_error"`` for payloads a fixed ``validate()``
    must reject.
    """
    os.makedirs(directory, exist_ok=True)
    name = f"repro-{oracle}-{spec.fingerprint()[:12]}.json"
    path = os.path.join(directory, name)
    payload = {
        "format": CORPUS_FORMAT,
        "oracle": oracle,
        "error": error,
        "expect": "ok",
        "seed": seed,
        "iteration": iteration,
        "fingerprint": spec.fingerprint(),
        "spec": spec.to_json_dict(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _rebase_file_traces(payload: Any, base: str) -> None:
    """Resolve relative ``file:`` trace paths against the corpus dir.

    Corpus entries must replay from any working directory; their
    companion trace files live next to the JSON.
    """
    spec = payload.get("spec")
    if not isinstance(spec, dict):
        return

    def rebase(holder: Any, key: str) -> None:
        if not isinstance(holder, dict):
            return
        value = holder.get(key)
        if isinstance(value, str) and value.startswith(FILE_TRACE_PREFIX):
            path = value[len(FILE_TRACE_PREFIX):]
            if not os.path.isabs(path):
                holder[key] = FILE_TRACE_PREFIX + os.path.join(base, path)

    rebase(spec.get("workload"), "trace")
    rebase(spec.get("arrival"), "trace_name")


def replay_corpus(
    directory: str,
    *,
    check_jobs: bool = False,
    log: Optional[Callable[[str], None]] = None,
) -> List[str]:
    """Replay every reproducer in ``directory``; returns failure strings."""
    failures: List[str] = []
    paths = sorted(glob.glob(os.path.join(directory, "*.json")))
    for path in paths:
        name = os.path.basename(path)
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        _rebase_file_traces(payload, os.path.dirname(os.path.abspath(path)))
        expect = payload.get("expect", "ok")
        if expect == "validation_error":
            try:
                ScenarioSpec.validate(payload["spec"])
            except ScenarioValidationError:
                if log:
                    log(f"[corpus] {name}: rejected as expected")
                continue
            failures.append(
                f"{name}: validate() accepted a payload the corpus "
                "expects to be rejected"
            )
            continue
        try:
            spec = ScenarioSpec.validate(payload["spec"])
        except ScenarioValidationError as exc:
            failures.append(f"{name}: spec no longer validates: {exc}")
            continue
        if expect == "goodput_starved":
            try:
                run_scenario(spec)
            except GoodputStarved:
                if log:
                    log(f"[corpus] {name}: starved as expected")
                continue
            except Exception as exc:  # noqa: BLE001
                failures.append(
                    f"{name}: expected GoodputStarved, got "
                    f"{type(exc).__name__}: {exc}"
                )
                continue
            failures.append(
                f"{name}: ran to completion but the corpus expects "
                "goodput starvation"
            )
            continue
        verdict = check_scenario(spec, check_jobs=check_jobs)
        if verdict is not None:
            failures.append(f"{name}: {verdict[0]} failed: {verdict[1]}")
        elif log:
            log(f"[corpus] {name}: all oracles green")
    if not paths and log:
        log(f"[corpus] no reproducers under {directory}")
    return failures


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class FuzzFailure:
    """One oracle violation, before and after shrinking."""

    iteration: int
    oracle: str
    error: str
    spec: ScenarioSpec
    minimized: Optional[ScenarioSpec] = None
    reproducer_path: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "iteration": self.iteration,
            "oracle": self.oracle,
            "error": self.error,
            "fingerprint": self.spec.fingerprint(),
            "minimized_fingerprint": (
                self.minimized.fingerprint() if self.minimized else None
            ),
            "minimized_spec": (
                self.minimized.to_json_dict() if self.minimized else None
            ),
            "reproducer_path": self.reproducer_path,
        }


@dataclasses.dataclass
class FuzzReport:
    """One fuzzing campaign's deterministic summary."""

    seed: int
    iterations: int
    fingerprints: List[str] = dataclasses.field(default_factory=list)
    failures: List[FuzzFailure] = dataclasses.field(default_factory=list)
    jobs_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> Dict[str, Any]:
        return {
            "fuzzer": "scenario-walk",
            "seed": self.seed,
            "iterations": self.iterations,
            "oracles": list(ORACLES),
            "jobs_checked": self.jobs_checked,
            "fingerprints": self.fingerprints,
            "failures": [failure.as_dict() for failure in self.failures],
        }


def run_fuzz(
    seed: int = 0,
    iterations: int = 50,
    *,
    check_jobs_every: int = 10,
    shrink: bool = True,
    corpus_dir: Optional[str] = None,
    trace_files: Sequence[str] = DEFAULT_TRACE_FILES,
    cache_dir: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """One fuzzing campaign: walk, execute, judge, shrink, record.

    Deterministic end to end: the report's ``fingerprints`` list is a
    pure function of ``seed`` and ``iterations`` (the determinism test
    pins two independent campaigns against each other).
    ``check_jobs_every=N`` runs the ParallelRunner invariance oracle on
    every Nth scenario (0 disables it); ``corpus_dir`` is where
    minimized reproducers land.
    """
    walker = ScenarioWalker(seed=seed, trace_files=trace_files)
    report = FuzzReport(seed=seed, iterations=iterations)
    for iteration in range(1, iterations + 1):
        spec = walker.next_spec()
        report.fingerprints.append(spec.fingerprint())
        check_jobs = bool(check_jobs_every) and iteration % check_jobs_every == 0
        if check_jobs:
            report.jobs_checked += 1
        verdict = check_scenario(
            spec, check_jobs=check_jobs, cache_dir=cache_dir
        )
        if verdict is None:
            if log and (iteration % 10 == 0 or iteration == iterations):
                log(f"[fuzz] {iteration}/{iterations} scenarios clean")
            continue
        oracle, error = verdict
        failure = FuzzFailure(
            iteration=iteration, oracle=oracle, error=error, spec=spec
        )
        if log:
            log(f"[fuzz] iteration {iteration}: {oracle} FAILED: {error}")
        if shrink:
            failure.minimized = shrink_scenario(
                spec, oracle, check_jobs=check_jobs, cache_dir=cache_dir,
                log=log,
            )
        if corpus_dir is not None:
            failure.reproducer_path = write_reproducer(
                corpus_dir,
                failure.minimized or spec,
                oracle,
                error,
                seed=seed,
                iteration=iteration,
            )
            if log:
                log(f"[fuzz] reproducer written: {failure.reproducer_path}")
        report.failures.append(failure)
    return report
