"""Named, reproducible random-number streams.

Every stochastic component of the simulator (arrival process, per-type
service demands, buffer-pool coin flips, lock item selection, ...)
draws from its own :class:`random.Random` substream derived from a
single root seed.  This gives two properties the experiments rely on:

* **Reproducibility** — the same seed regenerates the same run.
* **Common random numbers** — comparing two MPL values (or an internal
  vs external scheduling policy) under the same seed exposes each
  component to the same randomness, sharpening the comparison the same
  way the paper's paired hardware experiments do.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List


def derive_seed(root_seed: int, *components: object) -> int:
    """A stable 63-bit seed derived from a root seed and a label path.

    Replicated experiment grids (``bench --repeats K``) use this to
    give every replicate its own seed that depends only on
    ``(root_seed, components)`` — never on worker scheduling or
    submission order — so a ``--jobs N`` run is bit-identical to the
    sequential one.
    """
    label = ":".join([str(int(root_seed))] + [repr(c) for c in components])
    digest = hashlib.sha256(label.encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def replicate_seeds(root_seed: int, count: int, name: str = "replicate") -> List[int]:
    """``count`` distinct, order-stable seeds for replicated runs."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count!r}")
    return [derive_seed(root_seed, name, index) for index in range(count)]


class RandomStreams:
    """A factory of independent named substreams from one root seed."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the substream for ``name``, creating it on first use.

        Substream seeds are derived by hashing ``(root seed, name)`` so
        that streams are stable regardless of creation order.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        substream = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = substream
        return substream

    def spawn(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of this one's."""
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomStreams(seed={self.seed})"
