"""Optional compiled (cffi) kernel lane — build unit and loader.

The package ships ``kernel.c`` (the C mirror of the agenda heap, the
run loop's phase-1 drain, and the PS-pool settle kernel) plus a cffi
builder.  The compiled module is *optional*: the pure-Python lane is
canonical, and everything here degrades to "not available" when cffi,
a C compiler, or the built artifact is missing.

    python -m repro.sim._ckernel.builder   # or: make ckernel

builds ``repro.sim._ckernel._ckernel`` in place under ``src/``.
"""

from __future__ import annotations

from typing import Optional, Tuple

_LOADED: Optional[Tuple[object, object]] = None
_LOAD_FAILED = False


def load() -> Optional[Tuple[object, object]]:
    """Return ``(ffi, lib)`` for the built extension, or None."""
    global _LOADED, _LOAD_FAILED
    if _LOADED is not None:
        return _LOADED
    if _LOAD_FAILED:
        return None
    try:
        from repro.sim._ckernel import _ckernel  # type: ignore[attr-defined]
    except ImportError:
        _LOAD_FAILED = True
        return None
    _LOADED = (_ckernel.ffi, _ckernel.lib)
    return _LOADED


def available() -> bool:
    """Whether the compiled kernel lane is built and importable."""
    return load() is not None


def build(verbose: bool = False) -> str:
    """Compile the extension in place (requires cffi + a C compiler)."""
    from repro.sim._ckernel.builder import build as _build

    path = _build(verbose=verbose)
    # a fresh build supersedes any earlier failed-load memo
    global _LOAD_FAILED
    _LOAD_FAILED = False
    return path
