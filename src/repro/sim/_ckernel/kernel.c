/* The compiled kernel lane: a C agenda heap and PS-pool settle kernel.
 *
 * This file is compiled by cffi (see builder.py) into the extension
 * module ``repro.sim._ckernel._ckernel``.  It mirrors — operation for
 * operation, in the same order — the pure-Python hot paths it
 * replaces:
 *
 *   ck_agenda     <-> repro.sim.engine.Agenda's (when, sequence) heap
 *   ck_drain      <-> the phase-1 heap drain of Simulator.run()
 *   ck_pool       <-> repro.dbms.cpu.ProcessorSharingPool's settle /
 *                     water-fill / completion-timer machinery
 *
 * Everything is IEEE-754 binary64 arithmetic in exactly the operation
 * order of the Python source (builder.py compiles with
 * ``-ffp-contract=off`` so no FMA contraction can reassociate it), so
 * simulated timestamps are bit-identical across lanes.  The Python
 * lane stays canonical: when in doubt about an edge case, the answer
 * is "whatever cpu.py / engine.py does".
 *
 * Handle protocol (the int64 payload of a heap entry):
 *   handle >= 0   a Python-side event: an index into CAgenda._slots.
 *   handle <  0   a pool completion timer owned by this C kernel:
 *                 handle = -((generation << 8) | pool_id) - 1.
 *                 Stale generations (superseded by a reallocation) are
 *                 recognized and dropped entirely inside ck_drain,
 *                 exactly like ProcessorSharingPool._on_timer.
 *
 * A pool timer armed for ``now + delay`` is pushed on the heap even in
 * the pathological case where float addition rounds ``when`` back to
 * the current instant (the Python lane would route that to the
 * same-instant FIFO).  With demands >= 1e-9 and simulated times of
 * seconds this cannot happen before ``now`` exceeds ~4e6 s, far past
 * any experiment; both lanes would loop at that instant regardless, so
 * the lanes cannot diverge on any terminating run.
 */

#include <stdint.h>
#include <stdlib.h>

#define CK_EPSILON 1e-9
#define CK_MAX_POOLS 256

/* -- agenda heap ------------------------------------------------------ */

typedef struct {
    double when;
    int64_t seq;
    int64_t handle;
} ck_entry;

struct ck_pool;

typedef struct ck_agenda {
    ck_entry *heap;
    int64_t len;
    int64_t cap;
    int64_t next_seq; /* pre-incremented: first entry gets seq 1, like Agenda */
    struct ck_pool *pools[CK_MAX_POOLS];
    int npools;
} ck_agenda;

static void *ck_xrealloc(void *p, size_t size) {
    void *q = realloc(p, size);
    if (q == NULL)
        abort(); /* out of memory: nothing sensible to do mid-simulation */
    return q;
}

ck_agenda *ck_agenda_new(void) {
    ck_agenda *a = (ck_agenda *)calloc(1, sizeof(ck_agenda));
    if (a == NULL)
        abort();
    a->cap = 1024;
    a->heap = (ck_entry *)ck_xrealloc(NULL, (size_t)a->cap * sizeof(ck_entry));
    return a;
}

void ck_agenda_free(ck_agenda *a) {
    if (a == NULL)
        return;
    free(a->heap);
    free(a);
}

/* Strict (when, seq) lexicographic order: seq values are unique, so
 * this is a total order and pop order is independent of the heap's
 * internal arrangement — identical to heapq over (when, seq, event)
 * tuples. */
static int ck_lt(const ck_entry *x, const ck_entry *y) {
    if (x->when != y->when)
        return x->when < y->when;
    return x->seq < y->seq;
}

void ck_heap_push(ck_agenda *a, double when, int64_t handle) {
    if (a->len == a->cap) {
        a->cap *= 2;
        a->heap = (ck_entry *)ck_xrealloc(a->heap, (size_t)a->cap * sizeof(ck_entry));
    }
    a->next_seq += 1;
    int64_t pos = a->len++;
    ck_entry item;
    item.when = when;
    item.seq = a->next_seq;
    item.handle = handle;
    /* sift up */
    while (pos > 0) {
        int64_t parent = (pos - 1) >> 1;
        if (!ck_lt(&item, &a->heap[parent]))
            break;
        a->heap[pos] = a->heap[parent];
        pos = parent;
    }
    a->heap[pos] = item;
}

static ck_entry ck_heap_pop(ck_agenda *a) {
    ck_entry top = a->heap[0];
    ck_entry last = a->heap[--a->len];
    if (a->len > 0) {
        /* sift down */
        int64_t pos = 0;
        int64_t half = a->len >> 1;
        while (pos < half) {
            int64_t child = 2 * pos + 1;
            if (child + 1 < a->len && ck_lt(&a->heap[child + 1], &a->heap[child]))
                child += 1;
            if (!ck_lt(&a->heap[child], &last))
                break;
            a->heap[pos] = a->heap[child];
            pos = child;
        }
        a->heap[pos] = last;
    }
    return top;
}

double ck_peek(ck_agenda *a) {
    if (a->len == 0)
        return 1.0 / 0.0; /* +inf, like Agenda.peek on an empty heap */
    return a->heap[0].when;
}

int64_t ck_heap_len(ck_agenda *a) { return a->len; }

int64_t ck_sequence(ck_agenda *a) { return a->next_seq; }

int ck_pop(ck_agenda *a, double *when, int64_t *seq, int64_t *handle) {
    if (a->len == 0)
        return 0;
    ck_entry e = ck_heap_pop(a);
    *when = e.when;
    *seq = e.seq;
    *handle = e.handle;
    return 1;
}

/* -- processor-sharing pool ------------------------------------------- */

/* Jobs live in dense parallel arrays in admission order; completions
 * compact the arrays preserving that order, which is exactly the
 * iteration order of the Python dict in ProcessorSharingPool._jobs.
 * The Python wrapper keeps a mirror list (event, demand, priority) in
 * the same order, indexed by the pre-compaction indices this kernel
 * reports through ck_pool_finished_*. */
typedef struct ck_pool {
    ck_agenda *agenda;
    int pool_id;
    int cores;
    double speed;
    double capacity;  /* cores * speed */
    double speed_eps; /* speed - CK_EPSILON */
    double *remaining;
    double *weight;
    double *rate;
    unsigned char *active; /* water-fill scratch */
    int32_t *finished;     /* pre-compaction indices, ascending */
    int32_t n;
    int32_t cap;
    int32_t finished_n;
    int32_t weighted; /* jobs with weight != 1.0 */
    int uniform_mode; /* mirrors `_uniform_rate is not None` */
    double uniform_rate;
    double last_settle;
    int64_t generation;
    double least_remaining;
    int has_least; /* mirrors `_least_remaining is not None` */
    int least_valid;
    int needs_scan;
    double busy_core_time;
} ck_pool;

ck_pool *ck_pool_new(ck_agenda *a, int cores, double speed) {
    if (a->npools >= CK_MAX_POOLS)
        return NULL; /* caller falls back to the pure-Python pool */
    ck_pool *p = (ck_pool *)calloc(1, sizeof(ck_pool));
    if (p == NULL)
        abort();
    p->agenda = a;
    p->pool_id = a->npools;
    a->pools[a->npools++] = p;
    p->cores = cores;
    p->speed = speed;
    p->capacity = cores * speed;
    p->speed_eps = speed - CK_EPSILON;
    p->cap = 64;
    p->remaining = (double *)ck_xrealloc(NULL, (size_t)p->cap * sizeof(double));
    p->weight = (double *)ck_xrealloc(NULL, (size_t)p->cap * sizeof(double));
    p->rate = (double *)ck_xrealloc(NULL, (size_t)p->cap * sizeof(double));
    p->active = (unsigned char *)ck_xrealloc(NULL, (size_t)p->cap);
    p->finished = (int32_t *)ck_xrealloc(NULL, (size_t)p->cap * sizeof(int32_t));
    p->uniform_mode = 1;
    p->uniform_rate = 0.0;
    p->least_valid = 1;
    return p;
}

void ck_pool_free(ck_pool *p) {
    if (p == NULL)
        return;
    free(p->remaining);
    free(p->weight);
    free(p->rate);
    free(p->active);
    free(p->finished);
    free(p);
}

int ck_pool_id(ck_pool *p) { return p->pool_id; }
int32_t ck_pool_active_jobs(ck_pool *p) { return p->n; }
int32_t ck_pool_finished_count(ck_pool *p) { return p->finished_n; }
int32_t ck_pool_finished_at(ck_pool *p, int32_t i) { return p->finished[i]; }
double ck_pool_raw_busy_core_time(ck_pool *p) { return p->busy_core_time; }
double ck_pool_remaining_at(ck_pool *p, int32_t i) { return p->remaining[i]; }
int64_t ck_pool_generation(ck_pool *p) { return p->generation; }
int ck_pool_uniform_mode(ck_pool *p) { return p->uniform_mode; }
double ck_pool_uniform_rate(ck_pool *p) { return p->uniform_rate; }

static void ck_pool_grow(ck_pool *p) {
    p->cap *= 2;
    p->remaining = (double *)ck_xrealloc(p->remaining, (size_t)p->cap * sizeof(double));
    p->weight = (double *)ck_xrealloc(p->weight, (size_t)p->cap * sizeof(double));
    p->rate = (double *)ck_xrealloc(p->rate, (size_t)p->cap * sizeof(double));
    p->active = (unsigned char *)ck_xrealloc(p->active, (size_t)p->cap);
    p->finished = (int32_t *)ck_xrealloc(p->finished, (size_t)p->cap * sizeof(int32_t));
}

/* Mirror of ProcessorSharingPool._settle_scan: settle served work and
 * scan the jobs in one pass, collecting finished indices into
 * p->finished and (uniform mode) the min surviving remaining work. */
static void ck_settle_scan(ck_pool *p, double now, double *least, int *has_least) {
    double dt = now - p->last_settle;
    double total_rate = 0.0;
    p->finished_n = 0;
    *has_least = 0;
    *least = 0.0;
    if (p->uniform_mode) {
        double rate = p->uniform_rate;
        if (dt == 0.0 && p->least_valid && !p->needs_scan) {
            /* same-instant re-settle: the pass would be the identity */
            *has_least = p->has_least;
            *least = p->least_remaining;
            return;
        }
        p->last_settle = now;
        for (int32_t i = 0; i < p->n; i++) {
            double remaining = p->remaining[i] - rate * dt;
            if (remaining < 0.0)
                remaining = 0.0;
            p->remaining[i] = remaining;
            total_rate += rate;
            if (remaining <= CK_EPSILON) {
                p->finished[p->finished_n++] = i;
            } else if (!*has_least || remaining < *least) {
                *has_least = 1;
                *least = remaining;
            }
        }
        p->has_least = *has_least;
        p->least_remaining = *least;
        p->least_valid = 1;
        p->needs_scan = 0;
    } else {
        p->last_settle = now;
        p->least_valid = 0;
        for (int32_t i = 0; i < p->n; i++) {
            double rate = p->rate[i];
            double remaining = p->remaining[i] - rate * dt;
            if (remaining < 0.0)
                remaining = 0.0;
            p->remaining[i] = remaining;
            total_rate += rate;
            if (remaining <= CK_EPSILON)
                p->finished[p->finished_n++] = i;
        }
    }
    p->busy_core_time += (total_rate / p->speed) * dt;
}

/* Mirror of the inlined uniform water-fill in execute/_finish_jobs. */
static void ck_uniform_fill(ck_pool *p) {
    int32_t n = p->n;
    double capacity = p->capacity;
    p->uniform_mode = 1;
    if (n == 0 || capacity <= CK_EPSILON) {
        p->uniform_rate = 0.0;
        return;
    }
    double share = capacity / n;
    p->uniform_rate = (share >= p->speed_eps) ? p->speed : share;
}

/* Mirror of ProcessorSharingPool._water_fill (the weighted general
 * path; the uniform case is ck_uniform_fill). */
static void ck_water_fill(ck_pool *p) {
    if (p->weighted == 0) {
        ck_uniform_fill(p);
        return;
    }
    p->uniform_mode = 0; /* per-job rates own the allocation now */
    int32_t n = p->n;
    int32_t active_n = n;
    for (int32_t i = 0; i < n; i++) {
        p->rate[i] = 0.0;
        p->active[i] = 1;
    }
    double capacity = (double)p->cores * p->speed;
    while (active_n > 0 && capacity > CK_EPSILON) {
        double total_weight = 0.0;
        for (int32_t i = 0; i < n; i++)
            if (p->active[i])
                total_weight += p->weight[i];
        double share_per_weight = capacity / total_weight;
        int32_t capped = 0;
        for (int32_t i = 0; i < n; i++)
            if (p->active[i] && p->weight[i] * share_per_weight >= p->speed - CK_EPSILON)
                capped += 1;
        if (capped == 0) {
            for (int32_t i = 0; i < n; i++)
                if (p->active[i])
                    p->rate[i] = p->weight[i] * share_per_weight;
            return;
        }
        for (int32_t i = 0; i < n; i++)
            if (p->active[i] && p->weight[i] * share_per_weight >= p->speed - CK_EPSILON) {
                p->rate[i] = p->speed;
                capacity -= p->speed;
            }
        active_n = 0;
        for (int32_t i = 0; i < n; i++) {
            p->active[i] = p->active[i] && (p->rate[i] == 0.0);
            if (p->active[i])
                active_n += 1;
        }
    }
}

/* The in-kernel half of _finish_jobs: drop the jobs listed in
 * p->finished (ascending, pre-compaction indices), keep survivor
 * order, and re-fill the freed capacity.  Firing the completion
 * events and recording per-class stats stays in Python
 * (CProcessorSharingPool._finish_from_c), which reads p->finished
 * before the next kernel call overwrites it. */
static void ck_finish_internal(ck_pool *p) {
    int32_t fn = p->finished_n;
    if (fn > 0) {
        for (int32_t k = 0; k < fn; k++)
            if (p->weight[p->finished[k]] != 1.0)
                p->weighted -= 1;
        int32_t w = 0, k = 0;
        for (int32_t i = 0; i < p->n; i++) {
            if (k < fn && p->finished[k] == i) {
                k += 1;
                continue;
            }
            if (w != i) {
                p->remaining[w] = p->remaining[i];
                p->weight[w] = p->weight[i];
                p->rate[w] = p->rate[i];
            }
            w += 1;
        }
        p->n = w;
    }
    if (p->weighted == 0)
        ck_uniform_fill(p);
    else
        ck_water_fill(p);
}

/* Push the completion timer for the *current* generation: exactly
 * ``sim.timeout(max(0.0, delay), value=generation)`` on the Python
 * lane, which schedules at ``sim.now + delay``. */
static void ck_arm_push(ck_pool *p, double now, double delay) {
    if (delay < 0.0)
        delay = 0.0; /* max(0.0, next_finish) */
    double when = now + delay;
    int64_t handle = -((p->generation << 8) | (int64_t)p->pool_id) - 1;
    ck_heap_push(p->agenda, when, handle);
}

/* Mirror of ProcessorSharingPool._arm_timer (the full-scan arm). */
static void ck_arm_timer(ck_pool *p, double now) {
    p->generation += 1;
    if (p->uniform_mode) {
        int has = 0;
        double least = 0.0;
        for (int32_t i = 0; i < p->n; i++) {
            double remaining = p->remaining[i];
            if (!has || remaining < least) {
                has = 1;
                least = remaining;
            }
        }
        p->has_least = has;
        p->least_remaining = least;
        p->least_valid = 1;
        if (has && p->uniform_rate > CK_EPSILON)
            ck_arm_push(p, now, least / p->uniform_rate);
    } else {
        p->least_valid = 0;
        int has = 0;
        double next_finish = 0.0;
        for (int32_t i = 0; i < p->n; i++) {
            if (p->rate[i] > CK_EPSILON) {
                double eta = p->remaining[i] / p->rate[i];
                if (!has || eta < next_finish) {
                    has = 1;
                    next_finish = eta;
                }
            }
        }
        if (has)
            ck_arm_push(p, now, next_finish);
    }
}

/* Mirror of the hot middle of ProcessorSharingPool.execute (between
 * the validation and the return): settle, admit one job of ``demand``
 * and ``weight``, re-fill, complete in-kernel bookkeeping, arm the
 * next completion timer.  Returns the number of finished jobs the
 * settle pass surfaced (their pre-compaction indices are in
 * p->finished for the Python wrapper to fire). */
int32_t ck_pool_execute(ck_pool *p, double now, double demand, double weight) {
    int uniform_scan = p->uniform_mode;
    double least;
    int has_least;
    ck_settle_scan(p, now, &least, &has_least);
    int32_t fn = p->finished_n;
    if (p->n == p->cap)
        ck_pool_grow(p);
    int32_t idx = p->n++;
    p->remaining[idx] = demand;
    p->weight[idx] = weight;
    p->rate[idx] = 0.0;
    if (weight != 1.0)
        p->weighted += 1;
    if (p->weighted == 0)
        ck_uniform_fill(p);
    else
        ck_water_fill(p);
    if (fn > 0)
        ck_finish_internal(p); /* the new job is never among them */
    if (p->uniform_mode && uniform_scan) {
        /* steady uniform mode: the next finisher is simply
         * min(survivors, the new job's demand) */
        p->generation += 1;
        double remaining = demand;
        if (!has_least || remaining < least) {
            least = remaining;
            has_least = 1;
        }
        p->least_remaining = least;
        p->has_least = has_least;
        if (p->uniform_rate > CK_EPSILON)
            ck_arm_push(p, now, least / p->uniform_rate);
    } else {
        ck_arm_timer(p, now);
    }
    return fn;
}

/* Mirror of ProcessorSharingPool._on_timer for a timer of generation
 * ``gen`` firing at ``now``.  Returns the number of finished jobs (0
 * for a stale generation). */
int32_t ck_pool_timer_fire(ck_pool *p, double now, int64_t gen) {
    if (gen != p->generation)
        return 0; /* superseded by a later reallocation */
    int uniform_scan = p->uniform_mode;
    double least;
    int has_least;
    ck_settle_scan(p, now, &least, &has_least);
    int32_t fn = p->finished_n;
    if (fn > 0)
        ck_finish_internal(p);
    if (p->uniform_mode && uniform_scan) {
        p->generation += 1;
        if (has_least && p->uniform_rate > CK_EPSILON)
            ck_arm_push(p, now, least / p->uniform_rate);
    } else {
        ck_arm_timer(p, now);
    }
    return fn;
}

/* Mirror of ProcessorSharingPool._settle (the metrics face): settle,
 * but leave any surfaced completions pending for the next pool
 * event's scan. */
void ck_pool_settle_metrics(ck_pool *p, double now) {
    double least;
    int has_least;
    ck_settle_scan(p, now, &least, &has_least);
    if (p->finished_n > 0)
        p->needs_scan = 1;
    p->finished_n = 0;
}

/* Mirror of ProcessorSharingPool.set_weight past the validation:
 * settle, swap the weight of the job at dense index ``index``,
 * re-allocate, complete anything already done, re-arm.  Returns the
 * finished count (indices in p->finished). */
int32_t ck_pool_set_weight(ck_pool *p, double now, int32_t index, double new_weight) {
    double least;
    int has_least;
    ck_settle_scan(p, now, &least, &has_least);
    if (p->finished_n > 0)
        p->needs_scan = 1;
    if ((p->weight[index] != 1.0) != (new_weight != 1.0))
        p->weighted += (new_weight != 1.0) ? 1 : -1;
    p->weight[index] = new_weight;
    ck_water_fill(p);
    /* _complete_finished */
    p->finished_n = 0;
    for (int32_t i = 0; i < p->n; i++)
        if (p->remaining[i] <= CK_EPSILON)
            p->finished[p->finished_n++] = i;
    int32_t fn = p->finished_n;
    if (fn > 0)
        ck_finish_internal(p);
    ck_arm_timer(p, now);
    return fn;
}

/* -- the drain loop ---------------------------------------------------- */

/* Phase 1 of Simulator.run() for the C lane: pop heap entries at the
 * current instant.  Pool timers (negative handles) are consumed
 * entirely in-kernel — stale-generation drop, settle, completion
 * bookkeeping, re-arm — without surfacing to Python unless jobs
 * actually finished.  Returns:
 *   0  no more entries at now_t (heap empty or top is later)
 *   1  a Python event popped; its slot index is in *handle_out
 *   2  a pool timer completed jobs; the pool id is in *pool_out and
 *      the finished indices await ck_pool_finished_* (the caller must
 *      fire them before the next kernel call).
 */
int ck_drain(ck_agenda *a, double now_t, int64_t *handle_out, int32_t *pool_out) {
    while (a->len > 0 && a->heap[0].when == now_t) {
        ck_entry e = ck_heap_pop(a);
        if (e.handle >= 0) {
            *handle_out = e.handle;
            return 1;
        }
        int64_t v = -(e.handle + 1);
        ck_pool *p = a->pools[v & 0xFF];
        int32_t fn = ck_pool_timer_fire(p, now_t, v >> 8);
        if (fn > 0) {
            *pool_out = p->pool_id;
            return 2;
        }
    }
    return 0;
}
