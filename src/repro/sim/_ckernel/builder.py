"""cffi out-of-line builder for the compiled kernel lane.

Run ``python -m repro.sim._ckernel.builder`` (or ``make ckernel``) to
compile ``kernel.c`` into the extension module
``repro.sim._ckernel._ckernel``.  The build needs cffi and a C
compiler; neither is a dependency of the package — where they are
missing the pure-Python lane (the canonical implementation) simply
keeps running and :func:`repro.sim._ckernel.available` stays False.

``-ffp-contract=off`` matters: it forbids fused multiply-add
contraction, so the C arithmetic performs exactly the IEEE-754
binary64 operations, in exactly the order, that the Python source
does — the bit-identical-across-lanes guarantee rests on it.
"""

from __future__ import annotations

import os

_HERE = os.path.dirname(os.path.abspath(__file__))

#: The C functions the Python wrappers call (the declarations cffi
#: exposes on ``lib``); kernel.c is the single source of truth for the
#: definitions.
CDEF = """
typedef struct ck_agenda ck_agenda;
typedef struct ck_pool ck_pool;

ck_agenda *ck_agenda_new(void);
void ck_agenda_free(ck_agenda *a);
void ck_heap_push(ck_agenda *a, double when, int64_t handle);
double ck_peek(ck_agenda *a);
int64_t ck_heap_len(ck_agenda *a);
int64_t ck_sequence(ck_agenda *a);
int ck_pop(ck_agenda *a, double *when, int64_t *seq, int64_t *handle);
int ck_drain(ck_agenda *a, double now_t, int64_t *handle_out, int32_t *pool_out);

ck_pool *ck_pool_new(ck_agenda *a, int cores, double speed);
void ck_pool_free(ck_pool *p);
int ck_pool_id(ck_pool *p);
int32_t ck_pool_active_jobs(ck_pool *p);
int32_t ck_pool_finished_count(ck_pool *p);
int32_t ck_pool_finished_at(ck_pool *p, int32_t i);
double ck_pool_raw_busy_core_time(ck_pool *p);
double ck_pool_remaining_at(ck_pool *p, int32_t i);
int64_t ck_pool_generation(ck_pool *p);
int ck_pool_uniform_mode(ck_pool *p);
double ck_pool_uniform_rate(ck_pool *p);
int32_t ck_pool_execute(ck_pool *p, double now, double demand, double weight);
int32_t ck_pool_timer_fire(ck_pool *p, double now, int64_t gen);
void ck_pool_settle_metrics(ck_pool *p, double now);
int32_t ck_pool_set_weight(ck_pool *p, double now, int32_t index, double new_weight);
"""


def make_ffibuilder():
    """Build the FFI object (imports cffi; callers gate on its absence)."""
    from cffi import FFI

    ffibuilder = FFI()
    ffibuilder.cdef(CDEF)
    with open(os.path.join(_HERE, "kernel.c"), "r", encoding="utf-8") as fh:
        source = fh.read()
    ffibuilder.set_source(
        "repro.sim._ckernel._ckernel",
        source,
        extra_compile_args=["-O2", "-ffp-contract=off"],
    )
    return ffibuilder


def build(verbose: bool = False) -> str:
    """Compile the extension in place (under ``src/``); returns its path."""
    ffibuilder = make_ffibuilder()
    # src/repro/sim/_ckernel -> src; cffi lays the module out under the
    # package path derived from its dotted name, i.e. back into this
    # directory.
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(_HERE)))
    return ffibuilder.compile(tmpdir=src_root, verbose=verbose)


if __name__ == "__main__":
    print(build(verbose=True))
