"""Service-time distributions used throughout the reproduction.

The paper's analysis (§4.2) models transaction service demands with a
two-phase hyperexponential (H2) distribution parameterized by a mean
and a squared coefficient of variation C²; :func:`fit_hyperexponential`
implements the standard *balanced-means* fit used there.  The
experimental workloads additionally use exponential, Erlang, Pareto,
lognormal and empirical demands.

All distributions draw from a caller-supplied
:class:`random.Random`-compatible generator so that every component of
the simulator can own an independent, reproducible stream (see
:mod:`repro.sim.random`).

Hot consumers (the disk array, the WAL, delay stations) do not call
:meth:`Distribution.sample` per request; they pull variates through a
:class:`BlockSampler`, which pre-draws whole blocks via
:meth:`Distribution.sample_block` and serves them one at a time.  A
block of ``n`` variates advances the underlying stream exactly as
``n`` individual ``sample`` calls would — the specialized block
implementations hoist parameter lookups, never the arithmetic — so as
long as a stream has a single consumer (the engine's seed-derivation
rule), results are bit-identical to unbuffered sampling.
"""

from __future__ import annotations

import bisect
import math
import random as _random
from typing import List, Optional, Sequence


class Distribution:
    """Base class for positive random variates with known moments."""

    def sample(self, rng: _random.Random) -> float:
        """Draw one variate using ``rng``."""
        raise NotImplementedError

    def sample_block(self, rng: _random.Random, n: int) -> List[float]:
        """Draw ``n`` variates — the stream advances exactly as ``n``
        :meth:`sample` calls would (subclasses may only hoist parameter
        lookups out of the loop, never reorder or batch the raw draws).
        """
        sample = self.sample
        return [sample(rng) for _ in range(n)]

    @property
    def mean(self) -> float:
        """First moment E[X]."""
        raise NotImplementedError

    @property
    def variance(self) -> float:
        """Var[X]."""
        raise NotImplementedError

    @property
    def second_moment(self) -> float:
        """E[X^2] = Var[X] + E[X]^2."""
        return self.variance + self.mean**2

    @property
    def scv(self) -> float:
        """Squared coefficient of variation C^2 = Var[X] / E[X]^2."""
        if self.mean == 0:
            return 0.0
        return self.variance / self.mean**2

    def scaled(self, factor: float) -> "Distribution":
        """A distribution of ``factor * X`` (preserves the C^2)."""
        return _Scaled(self, factor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(mean={self.mean:.6g}, scv={self.scv:.4g})"


class _Scaled(Distribution):
    """Multiplicative rescaling of another distribution."""

    def __init__(self, base: Distribution, factor: float):
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor!r}")
        self._base = base
        self._factor = factor

    def sample(self, rng: _random.Random) -> float:
        return self._factor * self._base.sample(rng)

    @property
    def mean(self) -> float:
        return self._factor * self._base.mean

    @property
    def variance(self) -> float:
        return self._factor**2 * self._base.variance


class Deterministic(Distribution):
    """A point mass: every sample equals ``value``."""

    def __init__(self, value: float):
        if value < 0:
            raise ValueError(f"value must be non-negative, got {value!r}")
        self.value = float(value)

    def sample(self, rng: _random.Random) -> float:
        return self.value

    def sample_block(self, rng: _random.Random, n: int) -> List[float]:
        return [self.value] * n

    @property
    def mean(self) -> float:
        return self.value

    @property
    def variance(self) -> float:
        return 0.0


class Exponential(Distribution):
    """Exponential distribution with the given mean (C^2 = 1)."""

    # NB: no derived attributes — a Distribution's ``__dict__`` is part
    # of the canonical config encoding, so every instance attribute is
    # fingerprint-relevant (see repro.core.system.canonical_jsonable).

    def __init__(self, mean: float):
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        self._mean = float(mean)

    @property
    def rate(self) -> float:
        """The rate parameter 1 / mean."""
        return 1.0 / self._mean

    def sample(self, rng: _random.Random) -> float:
        return rng.expovariate(1.0 / self._mean)

    def sample_block(self, rng: _random.Random, n: int) -> List[float]:
        expovariate = rng.expovariate
        rate = 1.0 / self._mean
        return [expovariate(rate) for _ in range(n)]

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._mean**2


class Uniform(Distribution):
    """Uniform distribution on [low, high]."""

    def __init__(self, low: float, high: float):
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low!r}, {high!r}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: _random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def sample_block(self, rng: _random.Random, n: int) -> List[float]:
        uniform = rng.uniform
        low, high = self.low, self.high
        return [uniform(low, high) for _ in range(n)]

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    @property
    def variance(self) -> float:
        return (self.high - self.low) ** 2 / 12.0


class Erlang(Distribution):
    """Erlang-k distribution (sum of k i.i.d. exponentials), C^2 = 1/k."""

    def __init__(self, k: int, mean: float):
        if k < 1:
            raise ValueError(f"shape k must be >= 1, got {k!r}")
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        self.k = int(k)
        self._mean = float(mean)

    def sample(self, rng: _random.Random) -> float:
        phase_mean = self._mean / self.k
        total = 0.0
        for _ in range(self.k):
            total += rng.expovariate(1.0 / phase_mean)
        return total

    def sample_block(self, rng: _random.Random, n: int) -> List[float]:
        expovariate = rng.expovariate
        rate = 1.0 / (self._mean / self.k)
        k_range = range(self.k)
        out = []
        for _ in range(n):
            total = 0.0
            for _ in k_range:
                total += expovariate(rate)
            out.append(total)
        return out

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._mean**2 / self.k


class Hyperexponential(Distribution):
    """Mixture of exponentials: rate ``rates[i]`` with probability ``probs[i]``.

    The two-phase case (H2) is the paper's model of variable transaction
    demands; use :func:`fit_hyperexponential` to build one from a target
    mean and C^2.
    """

    def __init__(self, probs: Sequence[float], rates: Sequence[float]):
        if len(probs) != len(rates) or not probs:
            raise ValueError("probs and rates must be equal-length, non-empty")
        if any(p < 0 for p in probs) or abs(sum(probs) - 1.0) > 1e-9:
            raise ValueError(f"probs must be a distribution, got {probs!r}")
        if any(r <= 0 for r in rates):
            raise ValueError(f"rates must be positive, got {rates!r}")
        self.probs = [float(p) for p in probs]
        self.rates = [float(r) for r in rates]
        self._cum = []
        acc = 0.0
        for p in self.probs:
            acc += p
            self._cum.append(acc)
        self._cum[-1] = 1.0

    def sample(self, rng: _random.Random) -> float:
        u = rng.random()
        index = bisect.bisect_left(self._cum, u)
        return rng.expovariate(self.rates[index])

    @property
    def mean(self) -> float:
        return sum(p / r for p, r in zip(self.probs, self.rates))

    @property
    def second_moment_exact(self) -> float:
        return sum(2.0 * p / r**2 for p, r in zip(self.probs, self.rates))

    @property
    def variance(self) -> float:
        return self.second_moment_exact - self.mean**2


def fit_hyperexponential(mean: float, scv: float) -> Distribution:
    """Fit a distribution with the given mean and C^2 (>= 1 gives an H2).

    For ``scv > 1`` this returns the *balanced-means* two-phase
    hyperexponential (each phase contributes half the mean), the
    standard two-moment fit used in the paper's §4.2 analysis:

        p    = (1 + sqrt((scv - 1) / (scv + 1))) / 2
        mu_1 = 2 p / mean,   mu_2 = 2 (1 - p) / mean

    ``scv == 1`` returns an exponential and ``scv < 1`` an Erlang-k
    whose C^2 = 1/k is the closest achievable value from below.
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean!r}")
    if scv < 0:
        raise ValueError(f"scv must be non-negative, got {scv!r}")
    if scv < 1e-4:
        # effectively constant (also guards Erlang shape overflow)
        return Deterministic(mean)
    if abs(scv - 1.0) < 1e-12:
        return Exponential(mean)
    if scv < 1.0:
        k = min(10_000, max(1, round(1.0 / scv)))
        return Erlang(k, mean)
    p = 0.5 * (1.0 + math.sqrt((scv - 1.0) / (scv + 1.0)))
    mu1 = 2.0 * p / mean
    mu2 = 2.0 * (1.0 - p) / mean
    return Hyperexponential([p, 1.0 - p], [mu1, mu2])


class Pareto(Distribution):
    """Bounded Pareto-like heavy tail via a shifted Lomax distribution.

    Parameterized by shape ``alpha`` (> 2 for a finite variance) and the
    target mean.  Used to build the very high-variability TPC-W style
    demands.
    """

    def __init__(self, alpha: float, mean: float):
        if alpha <= 2:
            raise ValueError(f"alpha must exceed 2 for finite variance, got {alpha!r}")
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        self.alpha = float(alpha)
        self._mean = float(mean)
        # Lomax(alpha, lambda): mean = lambda / (alpha - 1)
        self._scale = self._mean * (self.alpha - 1.0)

    def sample(self, rng: _random.Random) -> float:
        u = rng.random()
        return self._scale * ((1.0 - u) ** (-1.0 / self.alpha) - 1.0)

    def sample_block(self, rng: _random.Random, n: int) -> List[float]:
        random = rng.random
        scale = self._scale
        exponent = -1.0 / self.alpha
        return [scale * ((1.0 - random()) ** exponent - 1.0) for _ in range(n)]

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        a, lam = self.alpha, self._scale
        return lam**2 * a / ((a - 1.0) ** 2 * (a - 2.0))


class LogNormal(Distribution):
    """Lognormal distribution parameterized by its mean and C^2."""

    def __init__(self, mean: float, scv: float):
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean!r}")
        if scv <= 0:
            raise ValueError(f"scv must be positive, got {scv!r}")
        self._mean = float(mean)
        self._scv = float(scv)
        self._sigma2 = math.log(1.0 + scv)
        self._mu = math.log(mean) - self._sigma2 / 2.0

    def sample(self, rng: _random.Random) -> float:
        return math.exp(rng.gauss(self._mu, math.sqrt(self._sigma2)))

    def sample_block(self, rng: _random.Random, n: int) -> List[float]:
        gauss = rng.gauss
        exp = math.exp
        mu = self._mu
        sigma = math.sqrt(self._sigma2)
        return [exp(gauss(mu, sigma)) for _ in range(n)]

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._scv * self._mean**2


class Empirical(Distribution):
    """Resampling (with replacement) from an observed set of values."""

    def __init__(self, values: Sequence[float]):
        if not values:
            raise ValueError("values must be non-empty")
        if any(v < 0 for v in values):
            raise ValueError("values must be non-negative")
        self.values: List[float] = [float(v) for v in values]
        n = len(self.values)
        self._mean = sum(self.values) / n
        self._variance = sum((v - self._mean) ** 2 for v in self.values) / n

    def sample(self, rng: _random.Random) -> float:
        return self.values[rng.randrange(len(self.values))]

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._variance


class Mixture(Distribution):
    """Probabilistic mixture of component distributions."""

    def __init__(
        self,
        components: Sequence[Distribution],
        weights: Optional[Sequence[float]] = None,
    ):
        if not components:
            raise ValueError("components must be non-empty")
        self.components = list(components)
        if weights is None:
            weights = [1.0] * len(self.components)
        if len(weights) != len(self.components):
            raise ValueError("weights and components must have equal length")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError(f"weights must be non-negative and not all zero")
        total = float(sum(weights))
        self.weights = [w / total for w in weights]
        self._cum = []
        acc = 0.0
        for w in self.weights:
            acc += w
            self._cum.append(acc)
        self._cum[-1] = 1.0

    def sample(self, rng: _random.Random) -> float:
        u = rng.random()
        index = bisect.bisect_left(self._cum, u)
        return self.components[index].sample(rng)

    @property
    def mean(self) -> float:
        return sum(w * c.mean for w, c in zip(self.weights, self.components))

    @property
    def variance(self) -> float:
        m2 = sum(w * c.second_moment for w, c in zip(self.weights, self.components))
        return m2 - self.mean**2


def moments_to_scv(mean: float, second_moment: float) -> float:
    """C^2 from the first two raw moments."""
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean!r}")
    return max(0.0, second_moment / mean**2 - 1.0)


class BlockSampler:
    """Serves one stream's variates from pre-drawn blocks.

    Binds a distribution to the :class:`random.Random` stream that owns
    it and amortizes the per-variate call overhead (method dispatch,
    parameter lookups) over ``block_size`` draws: calling the sampler
    pops the next buffered variate, refilling the buffer via
    :meth:`Distribution.sample_block` when it runs dry.

    **Bit-identity.**  The k-th variate served equals the k-th value
    ``distribution.sample(rng)`` would have returned, because a block
    advances the stream exactly like the equivalent individual draws
    and values are served strictly in draw order.  The only requirement
    is the stream-ownership rule the engine's seed derivation already
    enforces: nothing else may draw from ``rng``, otherwise pre-drawing
    would reorder the interleaving.  Stations sharing one stream (the
    disks of an array) must therefore share one sampler.

    The buffer holds the pending block in reverse, so serving is a
    single O(1) ``list.pop()``.
    """

    __slots__ = ("distribution", "rng", "block_size", "_buffer")

    def __init__(
        self,
        distribution: Distribution,
        rng: _random.Random,
        block_size: int = 512,
    ):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size!r}")
        self.distribution = distribution
        self.rng = rng
        self.block_size = block_size
        self._buffer: List[float] = []

    def __call__(self) -> float:
        """The next variate of the stream."""
        buffer = self._buffer
        if not buffer:
            buffer = self._buffer = self.distribution.sample_block(
                self.rng, self.block_size
            )
            buffer.reverse()
        return buffer.pop()

    @property
    def pending(self) -> int:
        """Variates drawn but not yet served (introspection/tests)."""
        return len(self._buffer)

    @property
    def mean(self) -> float:
        """The wrapped distribution's mean (pass-through)."""
        return self.distribution.mean

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockSampler({self.distribution!r}, block_size={self.block_size}, "
            f"pending={self.pending})"
        )
