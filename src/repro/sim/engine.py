"""A minimal, deterministic discrete-event simulation engine.

The engine follows the classic event/process design (as popularized by
SimPy) but is intentionally small and dependency free:

* :class:`Simulator` owns the virtual clock and a binary-heap agenda.
* :class:`Event` is a one-shot occurrence with callbacks and a value.
* :class:`Process` wraps a Python generator; each ``yield``-ed event
  suspends the process until the event fires.

Determinism matters for reproducing the paper's experiments, so ties in
time are broken by a monotonically increasing sequence number: two
events scheduled for the same instant fire in scheduling order.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence inside a :class:`Simulator`.

    An event starts *pending*, becomes *triggered* once scheduled to
    fire, and finally *processed* after its callbacks ran.  Processes
    wait on events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self._processed

    @property
    def value(self) -> Any:
        """The event's value (or exception) once triggered."""
        return self._value

    @property
    def ok(self) -> bool:
        """False when the event carries a failure (an exception)."""
        return self._ok

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self._ok = True
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire carrying ``exception``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._value = exception
        self._ok = False
        self.sim._schedule(self, delay)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event was already processed the callback runs
        immediately.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self._triggered = True
        self._value = value
        sim._schedule(self, delay)


class AnyOf(Event):
    """Fires when the first of ``events`` fires.

    The value is a dict mapping the fired event(s) to their values.
    """

    __slots__ = ("_events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            event.add_callback(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed({event: event.value})


class AllOf(Event):
    """Fires once all of ``events`` fired.

    The value is a dict mapping each event to its value.
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            event.add_callback(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e.value for e in self._events})


class Process(Event):
    """A generator-based simulation process.

    The generator yields :class:`Event` instances; the process resumes
    when the yielded event fires, receiving the event's value as the
    result of the ``yield`` expression.  The process itself is an event
    that fires with the generator's return value, so processes can wait
    on each other.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        bootstrap = Event(sim)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not finished yet."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process blocked on an event detaches it from that event.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        waiting_on = self._waiting_on
        if waiting_on is not None and waiting_on.callbacks is not None:
            try:
                waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        wakeup = Event(self.sim)
        wakeup.add_callback(lambda event: self._step(Interrupt(cause)))
        wakeup.succeed()

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._step(event.value, throw=False)
        else:
            self._step(event.value, throw=True)

    def _step(self, value: Any, throw: bool = True) -> None:
        if isinstance(value, BaseException) and throw:
            advance = lambda: self._generator.throw(value)
        else:
            advance = lambda: self._generator.send(value)
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if self.sim.strict:
                raise
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        self._waiting_on = target
        target.add_callback(self._resume)


class Simulator:
    """The simulation clock and event agenda.

    Usage::

        sim = Simulator()

        def hello():
            yield sim.timeout(3.0)
            return "done"

        proc = sim.process(hello())
        sim.run()
        assert sim.now == 3.0 and proc.value == "done"

    Parameters
    ----------
    strict:
        When true (the default), an exception escaping a process body
        propagates out of :meth:`run` instead of silently failing the
        process event.
    """

    def __init__(self, strict: bool = True):
        self.now: float = 0.0
        self.strict = strict
        self._agenda: list = []
        self._sequence = 0

    # -- event factories ------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a process from ``generator`` immediately."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event firing when every one of ``events`` fired."""
        return AllOf(self, events)

    # -- scheduling -----------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay!r}")
        self._sequence += 1
        heapq.heappush(self._agenda, (self.now + delay, self._sequence, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._agenda[0][0] if self._agenda else float("inf")

    def step(self) -> None:
        """Process the single next event on the agenda."""
        if not self._agenda:
            raise SimulationError("agenda is empty")
        when, _seq, event = heapq.heappop(self._agenda)
        self.now = when
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        for callback in callbacks:
            callback(event)

    def run(self, until: Optional[float] = None, stop: Optional[Event] = None) -> Any:
        """Run until the agenda drains, ``until`` is reached, or ``stop`` fires.

        Returns the value of ``stop`` when given and fired.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"until={until!r} lies in the past (now={self.now!r})")
        while self._agenda:
            if stop is not None and stop.processed:
                return stop.value
            if until is not None and self.peek() > until:
                self.now = until
                return stop.value if stop is not None and stop.processed else None
            self.step()
        if until is not None:
            self.now = until
        if stop is not None and stop.processed:
            return stop.value
        return None
