"""A minimal, deterministic discrete-event simulation engine.

The engine follows the classic event/process design (as popularized by
SimPy) but is intentionally small and dependency free:

* :class:`Simulator` owns the virtual clock and an :class:`Agenda`.
* :class:`Event` is a one-shot occurrence with callbacks and a value.
* :class:`Process` wraps a Python generator; each ``yield``-ed event
  suspends the process until the event fires.

Determinism matters for reproducing the paper's experiments, so ties in
time are broken by a monotonically increasing sequence number: two
events scheduled for the same instant fire in scheduling order.

The hot path is tuned for the workload the DBMS model generates —
millions of events, almost all of which have exactly one waiter:

* **Batched agenda** — the :class:`Agenda` owns the (time, sequence)
  total order behind one ``schedule`` entry point and pops whole
  same-timestamp runs in a single call (:meth:`Agenda.pop_batch`), so
  the zero-delay cascades the DBMS model generates (lock grants,
  completion notifications, bootstrap events) drain without re-checking
  the run loop's stop conditions per event.
* **In-kernel run loop** — :meth:`Simulator.run` is a single stack
  frame with every per-event lookup bound to a local; there is no
  ``step()`` call per event.  Measurement loops hand the kernel a
  :class:`KernelHooks` so "run until N completions" is an inlined
  length check instead of an outer Python loop.
* **Single-waiter fast path** — an event stores its first callback in a
  dedicated slot and only allocates a callback list when a second
  waiter appears, so the common yield/resume cycle never touches a
  list.
* **Timeout recycling** — fired :class:`Timeout` events that nobody
  references anymore (checked via the CPython refcount) return to a
  per-simulator free list and are reused by the next
  :meth:`Simulator.timeout` call instead of being reallocated.
* **Allocation-free stepping** — :class:`Process` resumes its generator
  directly (no per-step closures, no per-interrupt closures) and
  schedules itself without intermediate helper events beyond the
  initial bootstrap.

None of this changes observable semantics: event ordering, values and
callback sequencing are identical to the straightforward
implementation.
"""

from __future__ import annotations

import heapq
import os
import sys
from collections import deque
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional, Tuple


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Agenda:
    """The simulator's future-event set: a (time, sequence) total order.

    A binary heap of ``(when, sequence, event)`` entries plus a plain
    FIFO of *same-instant* events, behind a single :meth:`schedule`
    entry point — every scheduling site in the kernel
    (``Event.succeed``, ``Timeout``, the timeout free list,
    ``Simulator._schedule``) funnels through it, so the tie-breaking
    order has exactly one owner.

    The FIFO is the zero-delay fast path.  Most events the DBMS model
    fires are scheduled *at the current instant* (lock grants,
    completion notifications, process bootstraps); those skip the heap
    entirely — no entry tuple, no sequence number, no ``heappush`` /
    ``heappop`` — and are served in append order.  The combined order
    is exactly the (time, sequence) order of a single heap:

    * a heap entry at the current instant was necessarily scheduled at
      an *earlier* instant (``schedule`` routes anything landing on the
      current instant — even a positive delay rounded down by float
      addition — to the FIFO), so it is older than every FIFO entry and
      fires first;
    * FIFO entries fire in scheduling order among themselves;
    * everything else in the heap lies strictly in the future.

    Whenever control leaves the drain loop (:meth:`flush`, called on
    every :meth:`Simulator.run` exit and by the one-at-a-time
    accessors), pending FIFO entries are folded back into the heap with
    fresh sequence numbers — they are the youngest entries at their
    timestamp, so the total order is unchanged and the heap alone is
    again authoritative.
    """

    __slots__ = ("_heap", "_dq", "_sequence", "_now")

    def __init__(self):
        self._heap: List[Tuple[float, int, "Event"]] = []
        self._dq: Deque["Event"] = deque()  # same-instant FIFO
        self._sequence = 0
        self._now = 0.0

    def schedule(self, event: "Event", when: float) -> None:
        """Add ``event`` at time ``when`` (ties fire in schedule order)."""
        if when == self._now:
            self._dq.append(event)
        else:
            self._sequence = sequence = self._sequence + 1
            heapq.heappush(self._heap, (when, sequence, event))

    def flush(self) -> None:
        """Fold pending same-instant entries into the heap.

        They receive fresh (youngest) sequence numbers at the current
        instant, which is exactly the order they already occupied.
        """
        dq = self._dq
        if dq:
            heap = self._heap
            now = self._now
            sequence = self._sequence
            push = heapq.heappush
            for event in dq:
                sequence += 1
                push(heap, (now, sequence, event))
            self._sequence = sequence
            dq.clear()

    def peek(self) -> float:
        """Time of the earliest entry, or ``inf`` when empty."""
        if self._dq:
            return self._now
        heap = self._heap
        return heap[0][0] if heap else float("inf")

    def pop(self) -> Tuple[float, "Event"]:
        """Remove and return the earliest ``(when, event)`` pair."""
        self.flush()
        if not self._heap:
            raise SimulationError("agenda is empty")
        when, _seq, event = heapq.heappop(self._heap)
        self._now = when
        return when, event

    def pop_batch(self, out: list) -> int:
        """Pop every entry of the earliest timestamp into ``out``.

        Entries are appended as the full ``(when, sequence, event)``
        triples in firing order, so an interrupted consumer can push
        unprocessed entries straight back via ``heapq.heappush``.
        Returns the batch size; raises on an empty agenda.
        """
        self.flush()
        heap = self._heap
        if not heap:
            raise SimulationError("agenda is empty")
        pop = heapq.heappop
        entry = pop(heap)
        when = entry[0]
        self._now = when
        out.append(entry)
        count = 1
        while heap and heap[0][0] == when:
            out.append(pop(heap))
            count += 1
        return count

    def __len__(self) -> int:
        return len(self._heap) + len(self._dq)

    def __bool__(self) -> bool:
        return bool(self._heap) or bool(self._dq)


def resolve_kernel_lane(lane: Optional[str] = None) -> str:
    """Resolve which kernel lane a new :class:`Simulator` should run.

    ``lane`` (or, when None, the ``REPRO_KERNEL`` environment variable)
    selects between:

    * ``"py"`` — the pure-Python kernel, the canonical implementation
      and the default;
    * ``"c"`` — the compiled (cffi) lane; an error if it is not built,
      because an explicit request must never silently fall back;
    * ``"auto"`` — the compiled lane when built, otherwise ``"py"``.

    Both lanes produce bit-identical results (same IEEE-754 binary64
    operations in the same order), so the choice only affects
    wall-clock — never fingerprints, digests or run arrays.
    """
    if lane is None:
        lane = os.environ.get("REPRO_KERNEL", "py")
    lane = lane.lower()
    if lane == "py":
        return "py"
    if lane in ("c", "auto"):
        from repro.sim import _ckernel

        if _ckernel.available():
            return "c"
        if lane == "c":
            raise SimulationError(
                "kernel lane 'c' requested but the compiled kernel is not built; "
                "run `python -m repro.sim._ckernel.builder` (needs cffi and a C "
                "compiler) or select lane 'py'/'auto'"
            )
        return "py"
    raise SimulationError(f"unknown kernel lane {lane!r}; expected 'py', 'c' or 'auto'")


class CAgenda:
    """The :class:`Agenda` API over the compiled (cffi) kernel heap.

    The (when, sequence) heap lives in C (``sim/_ckernel/kernel.c``);
    events cross the boundary as integer *slot handles* — indices into
    :attr:`_slots`, recycled through :attr:`_free`.  The same-instant
    FIFO stays a Python deque so every existing zero-delay fast path
    (``Event.succeed``, ``Simulator._fire_now``, process bootstrap)
    works unchanged, byte for byte in the same order.

    Pool completion timers armed by the in-kernel PS pools live in the
    heap as *negative* handles and are consumed inside the kernel's
    drain; the one visible difference from the Python lane is that the
    one-at-a-time faces (:meth:`pop` / :meth:`pop_batch`) process such
    timers transparently instead of surfacing them as ``Timeout``
    events.  :meth:`Simulator.run` — the canonical face — is
    bit-identical across lanes.
    """

    __slots__ = (
        "_ffi",
        "_lib",
        "_c",
        "_dq",
        "_now",
        "_slots",
        "_free",
        "_sim",
        "_w_out",
        "_s_out",
        "_h_out",
        "_p_out",
    )

    def __init__(self, sim: "Simulator"):
        from repro.sim import _ckernel

        loaded = _ckernel.load()
        if loaded is None:  # pragma: no cover - guarded by resolve_kernel_lane
            raise SimulationError("compiled kernel lane is not built")
        self._ffi, self._lib = loaded
        self._c = self._ffi.gc(self._lib.ck_agenda_new(), self._lib.ck_agenda_free)
        self._dq: Deque["Event"] = deque()
        self._now = 0.0
        self._slots: List[Optional["Event"]] = []
        self._free: List[int] = []
        self._sim = sim
        # out-params reused across every kernel call
        self._w_out = self._ffi.new("double *")
        self._s_out = self._ffi.new("int64_t *")
        self._h_out = self._ffi.new("int64_t *")
        self._p_out = self._ffi.new("int32_t *")

    def schedule(self, event: "Event", when: float) -> None:
        """Add ``event`` at time ``when`` (ties fire in schedule order)."""
        if when == self._now:
            self._dq.append(event)
        else:
            free = self._free
            slots = self._slots
            if free:
                slot = free.pop()
                slots[slot] = event
            else:
                slot = len(slots)
                slots.append(event)
            self._lib.ck_heap_push(self._c, when, slot)

    def flush(self) -> None:
        """Fold pending same-instant entries into the heap."""
        dq = self._dq
        if dq:
            now = self._now
            push = self._lib.ck_heap_push
            c = self._c
            free = self._free
            slots = self._slots
            for event in dq:
                if free:
                    slot = free.pop()
                    slots[slot] = event
                else:
                    slot = len(slots)
                    slots.append(event)
                push(c, now, slot)
            dq.clear()

    def peek(self) -> float:
        """Time of the earliest entry, or ``inf`` when empty."""
        if self._dq:
            return self._now
        return self._lib.ck_peek(self._c)

    def pop(self) -> Tuple[float, "Event"]:
        """Remove and return the earliest ``(when, event)`` pair.

        In-kernel pool timers encountered on the way are fired
        in-kernel (their completions join the FIFO with fresh sequence
        numbers, exactly as on the Python lane) and not surfaced.
        """
        self.flush()
        lib = self._lib
        c = self._c
        w, s, h = self._w_out, self._s_out, self._h_out
        slots = self._slots
        while True:
            if not lib.ck_pop(c, w, s, h):
                raise SimulationError("agenda is empty")
            when = w[0]
            handle = h[0]
            self._now = when
            if handle >= 0:
                event = slots[handle]
                slots[handle] = None
                self._free.append(handle)
                return when, event
            v = -(handle + 1)
            pool = self._sim._c_pools[v & 0xFF]
            if lib.ck_pool_timer_fire(pool._cp, when, v >> 8):
                pool._finish_from_c()
                self.flush()

    def pop_batch(self, out: list) -> int:
        """Pop every entry of the earliest timestamp into ``out``.

        Appends ``(when, sequence, event)`` triples in firing order
        (the sequence numbers are the kernel's, identical to the
        Python lane's); in-kernel pool timers are consumed
        transparently and do not appear in ``out``.
        """
        self.flush()
        lib = self._lib
        c = self._c
        w, s, h = self._w_out, self._s_out, self._h_out
        slots = self._slots
        free = self._free
        count = 0
        batch_when = None
        while True:
            if batch_when is not None and lib.ck_peek(c) != batch_when:
                break
            if not lib.ck_pop(c, w, s, h):
                if batch_when is None:
                    raise SimulationError("agenda is empty")
                break
            when = w[0]
            handle = h[0]
            self._now = when
            batch_when = when
            if handle >= 0:
                event = slots[handle]
                slots[handle] = None
                free.append(handle)
                out.append((when, s[0], event))
                count += 1
            else:
                v = -(handle + 1)
                pool = self._sim._c_pools[v & 0xFF]
                if lib.ck_pool_timer_fire(pool._cp, when, v >> 8):
                    pool._finish_from_c()
                    self.flush()
        return count

    def __len__(self) -> int:
        return int(self._lib.ck_heap_len(self._c)) + len(self._dq)

    def __bool__(self) -> bool:
        return bool(self._dq) or self._lib.ck_heap_len(self._c) > 0


class KernelHooks:
    """Declarative stop condition the kernel polls inside its run loop.

    ``counter`` is any sized container that grows as the simulation
    progresses (in practice the metrics collector's completed-records
    list) and ``target`` the length at which :meth:`Simulator.run`
    returns.  The kernel checks ``len(counter) >= target`` right after
    each event's callbacks — the same boundary the old outer
    ``while len(records) < target: sim.step()`` loop observed, so
    results are bit-identical while the per-event Python loop (and its
    method call per event) disappears.
    """

    __slots__ = ("counter", "target")

    def __init__(self, counter, target: int):
        self.counter = counter
        self.target = int(target)

    def satisfied(self) -> bool:
        """Whether the stop condition already holds."""
        return len(self.counter) >= self.target


class Event:
    """A one-shot occurrence inside a :class:`Simulator`.

    An event starts *pending*, becomes *triggered* once scheduled to
    fire, and finally *processed* after its callbacks ran.  Processes
    wait on events by yielding them.
    """

    __slots__ = ("sim", "_cb", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        # Single-waiter fast path: the first callback lives in ``_cb``;
        # ``callbacks`` is only allocated when a second waiter appears.
        self._cb: Optional[Callable[["Event"], None]] = None
        self.callbacks: Optional[list] = None
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self._processed

    @property
    def value(self) -> Any:
        """The event's value (or exception) once triggered."""
        return self._value

    @property
    def ok(self) -> bool:
        """False when the event carries a failure (an exception)."""
        return self._ok

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if delay == 0.0:
            # same-instant fast lane (the overwhelmingly common case):
            # append straight onto the agenda's FIFO, exactly what
            # Agenda.schedule would do for when == now
            self._triggered = True
            self._value = value
            self._ok = True
            self.sim._agenda._dq.append(self)
            return self
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay!r}")
        self._triggered = True
        self._value = value
        self._ok = True
        sim = self.sim
        sim._agenda.schedule(self, sim.now + delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire carrying ``exception``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._value = exception
        self._ok = False
        self.sim._schedule(self, delay)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event was already processed the callback runs
        immediately.
        """
        if self._processed:
            callback(self)
        elif self._cb is None:
            self._cb = callback
        elif self.callbacks is None:
            self.callbacks = [callback]
        else:
            self.callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Detach a pending callback (no-op if absent or already fired)."""
        if self._processed:
            return
        # == not `is`: bound methods are fresh objects on every access
        if self._cb == callback:
            # promote the overflow head to preserve callback order
            if self.callbacks:
                self._cb = self.callbacks.pop(0)
            else:
                self._cb = None
        elif self.callbacks is not None:
            try:
                self.callbacks.remove(callback)
            except ValueError:
                pass


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        # Inlined Event.__init__: timeouts are the most common event by
        # far, so their construction is kept flat.
        self.sim = sim
        self._cb = None
        self.callbacks = None
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        sim._agenda.schedule(self, sim.now + delay)


class _Composite(Event):
    """Shared base of :class:`AnyOf` / :class:`AllOf`.

    Once the composite's fate is decided it detaches its ``_on_fire``
    from every member still pending, so losing members no longer pin
    the composite alive — and plain timeouts among them become
    eligible for the simulator's free list again.
    """

    __slots__ = ("_events",)

    def _detach_pending(self, fired: Event) -> None:
        callback = self._on_fire
        for event in self._events:
            if event is not fired and not event._processed:
                event.remove_callback(callback)

    def _on_fire(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Composite):
    """Fires when the first of ``events`` fires.

    The value is a dict mapping the fired event(s) to their values.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            event.add_callback(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed({event: event.value})
        self._detach_pending(event)


class AllOf(_Composite):
    """Fires once all of ``events`` fired.

    The value is a dict mapping each event to its value.
    """

    __slots__ = ("_remaining",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            event.add_callback(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            self._detach_pending(event)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e.value for e in self._events})


class Process(Event):
    """A generator-based simulation process.

    The generator yields :class:`Event` instances; the process resumes
    when the yielded event fires, receiving the event's value as the
    result of the ``yield`` expression.  The process itself is an event
    that fires with the generator's return value, so processes can wait
    on each other.
    """

    __slots__ = (
        "_generator", "_waiting_on", "_bound_resume", "_interrupt_pending",
        "name",
    )

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._interrupt_pending = False
        # one bound method for the process's lifetime — registering a
        # waiter is a slot load instead of a method-object allocation
        self._bound_resume = self._resume
        self.name = name or getattr(generator, "__name__", "process")
        bootstrap = Event(sim)
        bootstrap._cb = self._bound_resume
        bootstrap._triggered = True  # inlined succeed(): fresh event
        sim._agenda._dq.append(bootstrap)

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not finished yet."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process blocked on an event detaches it from that event.  The
        cause travels as the wakeup event's failure value — no
        per-interrupt closure is allocated.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        waiting_on = self._waiting_on
        if waiting_on is not None:
            waiting_on.remove_callback(self._bound_resume)
        self._waiting_on = None
        self._interrupt_pending = True
        wakeup = Event(self.sim)
        wakeup._cb = self._bound_resume
        wakeup.fail(Interrupt(cause))

    @property
    def interrupt_pending(self) -> bool:
        """An interrupt has been thrown but the process has not yet run.

        Two tear-down paths can race at one instant (a 2PC prepare
        timeout and a resilience deadline both aborting the same
        branch); the second caller must not interrupt again — the
        wakeup it would schedule lands after the first interrupt has
        already finished the generator.
        """
        return self._interrupt_pending

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome (the only
        stepping path: resumes, failures and interrupts all land here)."""
        self._waiting_on = None
        self._interrupt_pending = False
        value = event._value
        try:
            if event._ok or not isinstance(value, BaseException):
                target = self._generator.send(value)
            else:
                target = self._generator.throw(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if self.sim.strict:
                raise
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        self._waiting_on = target
        # inlined add_callback: the single-waiter case is ~all of them
        if target._processed:
            self._resume(target)
        elif target._cb is None:
            target._cb = self._bound_resume
        else:
            target.add_callback(self._bound_resume)


class Simulator:
    """The simulation clock and event agenda.

    Usage::

        sim = Simulator()

        def hello():
            yield sim.timeout(3.0)
            return "done"

        proc = sim.process(hello())
        sim.run()
        assert sim.now == 3.0 and proc.value == "done"

    Parameters
    ----------
    strict:
        When true (the default), an exception escaping a process body
        propagates out of :meth:`run` instead of silently failing the
        process event.
    kernel_lane:
        ``"py"`` (canonical pure Python), ``"c"`` (the compiled cffi
        kernel; errors if unbuilt) or ``"auto"`` (compiled when built,
        else Python).  Defaults to the ``REPRO_KERNEL`` environment
        variable, falling back to ``"py"``.  Both lanes are
        bit-identical; see :func:`resolve_kernel_lane`.
    """

    #: Upper bound on the timeout free list (see :meth:`timeout`); also
    #: caps the plain-event free list behind :meth:`event`/:meth:`fired`.
    TIMEOUT_POOL_LIMIT = 256

    #: ``sys.getrefcount`` result for an object referenced only by one
    #: local variable (the argument slot accounts for the rest); a fired
    #: timeout at or below this count is provably unreferenced by user
    #: code and safe to recycle.
    _FREE_REFCOUNT = sys.getrefcount(object())

    def __init__(self, strict: bool = True, kernel_lane: Optional[str] = None):
        self.now: float = 0.0
        self.strict = strict
        lane = resolve_kernel_lane(kernel_lane)
        self.kernel_lane = lane
        if lane == "c":
            self._agenda = CAgenda(self)
            #: in-kernel PS-pool wrappers, indexed by their C pool id
            self._c_pools: list = []
            # instance attribute shadows the class method, so the
            # pure-Python lane pays nothing for lane dispatch
            self.run = self._run_c
        else:
            self._agenda = Agenda()
        # The same-instant fast lane, pre-bound once.  Components that
        # complete events on their hot paths (the CPU pool, disks, WAL,
        # front-end) cache this instead of reaching into the agenda
        # themselves, so the kernel keeps a single owner of the lane:
        # ``_fire_now(event)`` appends an event the caller has already
        # marked triggered.  It skips succeed()'s already-triggered
        # guard — callers must own the event's only completion site.
        self._fire_now = self._agenda._dq.append
        self._timeout_pool: list = []
        self._event_pool: list = []  # recycled plain Events (see run())
        #: Timeout events served from the free list (introspection/tests).
        self.timeout_reuses = 0

    # -- event factories ------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event.

        Serves from the plain-event free list when possible; recycled
        instances are indistinguishable from fresh ones (the run loop
        only recycles events proven unreferenced via the refcount).
        """
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event._value = None
            event._ok = True
            event._triggered = False
            event._processed = False
            return event
        return Event(self)

    def fired(self, value: Any = None) -> Event:
        """An event already scheduled to fire at the current instant.

        Equivalent to ``event().succeed(value)`` in one hop — the
        shape every zero-wait grant (an uncontended lock, an empty
        admission check) hands back to its waiter.  Serves from the
        plain-event free list the run loop maintains (same
        refcount-proof recycling as timeouts).
        """
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event._value = value
            event._ok = True
            event._triggered = True
            event._processed = False
        else:
            event = Event(self)
            event._triggered = True
            event._value = value
        self._agenda._dq.append(event)  # same-instant fast lane
        return event

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now.

        Serves from the pre-allocated free list of recycled timeouts
        when possible; recycled instances are indistinguishable from
        fresh ones (see :meth:`run` for the safety argument).
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay!r}")
            event = pool.pop()
            event._value = value
            event._ok = True
            event._triggered = True
            event._processed = False
            self._agenda.schedule(event, self.now + delay)
            self.timeout_reuses += 1
            return event
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a process from ``generator`` immediately."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event firing once every one of ``events`` fired."""
        return AllOf(self, events)

    # -- scheduling -----------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay!r}")
        self._agenda.schedule(event, self.now + delay)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._agenda.peek()

    def step(self) -> None:
        """Process the single next event on the agenda.

        The one-at-a-time compatibility face of the batched run loop —
        useful for tests and debugging; :meth:`run` does not call it.
        """
        when, event = self._agenda.pop()
        self.now = when
        event._processed = True
        callback = event._cb
        if callback is not None:
            event._cb = None
            callbacks = event.callbacks
            if callbacks is None:
                callback(event)
            else:
                event.callbacks = None
                callback(event)
                for callback in callbacks:
                    callback(event)
        else:
            callbacks = event.callbacks
            if callbacks is not None:
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
        if (
            event.__class__ is Timeout
            and len(self._timeout_pool) < self.TIMEOUT_POOL_LIMIT
            and sys.getrefcount(event) == self._FREE_REFCOUNT + 1
        ):
            event._value = None
            self._timeout_pool.append(event)

    def run(
        self,
        until: Optional[float] = None,
        stop: Optional[Event] = None,
        hooks: Optional[KernelHooks] = None,
    ) -> Any:
        """Drain the agenda until a stop condition holds.

        Stops when the agenda empties, virtual time would pass
        ``until``, the ``stop`` event fires, or ``hooks`` (a
        :class:`KernelHooks` count condition) is satisfied.  Returns
        the value of ``stop`` when given and fired.

        This is the kernel hot loop: one stack frame, every per-event
        lookup bound to a local.  Same-instant runs drain straight off
        the agenda's FIFO (the inlined form of
        :meth:`Agenda.pop_batch` — no entry tuples, no heap traffic);
        heap pops only happen when virtual time actually advances.
        After an event's callbacks ran, a plain :class:`Timeout` that
        nothing else references (verified via the CPython refcount, so
        events held by user code are never touched) is recycled into
        the timeout free list.  Every exit folds the pending FIFO back
        into the heap, so the agenda always reflects exactly the events
        that have not fired.
        """
        now = self.now
        if until is not None and until < now:
            raise SimulationError(f"until={until!r} lies in the past (now={now!r})")
        if stop is not None and stop._processed:
            return stop._value
        # locals-bound hot state
        agenda = self._agenda
        heap = agenda._heap
        dq = agenda._dq
        popleft = dq.popleft
        pop = heapq.heappop
        until_t = float("inf") if until is None else until
        counter = target = None
        if hooks is not None:
            counter = hooks.counter
            target = hooks.target
            if len(counter) >= target:
                return None
        pool = self._timeout_pool
        pool_limit = self.TIMEOUT_POOL_LIMIT
        free_threshold = self._FREE_REFCOUNT + 1
        getrefcount = sys.getrefcount
        timeout_class = Timeout
        now_t = agenda._now
        event_class = Event
        event_pool = self._event_pool
        try:
            while True:
                # -- phase 1: heap entries at the current instant.
                #    These predate every FIFO entry (scheduling at the
                #    running instant always lands on the FIFO), so they
                #    go first; the heap cannot regain entries at now_t
                #    while the instant is being processed. ------------
                while heap and heap[0][0] == now_t:
                    event = pop(heap)[2]
                    event._processed = True
                    callback = event._cb
                    if callback is not None:
                        event._cb = None
                        callbacks = event.callbacks
                        if callbacks is None:
                            callback(event)
                        else:
                            event.callbacks = None
                            callback(event)
                            for callback in callbacks:
                                callback(event)
                    else:
                        callbacks = event.callbacks
                        if callbacks is not None:
                            event.callbacks = None
                            for callback in callbacks:
                                callback(event)
                    if event is stop:
                        return event._value
                    if (
                        event.__class__ is timeout_class
                        and len(pool) < pool_limit
                        and getrefcount(event) == free_threshold
                    ):
                        event._value = None
                        pool.append(event)
                    elif (
                        event.__class__ is event_class
                        and len(event_pool) < pool_limit
                        and getrefcount(event) == free_threshold
                    ):
                        event._value = None
                        event_pool.append(event)
                    if counter is not None and len(counter) >= target:
                        return None
                # -- phase 2: the same-instant FIFO (may keep growing
                #    while it drains; nothing here touches the heap's
                #    now_t run, which is already empty) ---------------
                while dq:
                    event = popleft()
                    event._processed = True
                    callback = event._cb
                    if callback is not None:
                        event._cb = None
                        callbacks = event.callbacks
                        if callbacks is None:
                            callback(event)
                        else:
                            event.callbacks = None
                            callback(event)
                            for callback in callbacks:
                                callback(event)
                    else:
                        callbacks = event.callbacks
                        if callbacks is not None:
                            event.callbacks = None
                            for callback in callbacks:
                                callback(event)
                    if event is stop:
                        return event._value
                    if (
                        event.__class__ is event_class
                        and len(event_pool) < pool_limit
                        and getrefcount(event) == free_threshold
                    ):
                        event._value = None
                        event_pool.append(event)
                    elif (
                        event.__class__ is timeout_class
                        and len(pool) < pool_limit
                        and getrefcount(event) == free_threshold
                    ):
                        event._value = None
                        pool.append(event)
                    if counter is not None and len(counter) >= target:
                        return None
                # -- phase 3: advance virtual time --------------------
                if heap:
                    when = heap[0][0]
                    if when > until_t:
                        self.now = until
                        agenda._now = until
                        return None
                    now_t = when
                    self.now = when
                    agenda._now = when
                else:
                    break
        finally:
            # fold any pending same-instant entries back into the heap
            # so the agenda is self-contained between runs
            agenda.flush()
        if until is not None:
            self.now = until
            agenda._now = until
        if stop is not None and stop._processed:
            return stop._value
        return None

    def _run_c(
        self,
        until: Optional[float] = None,
        stop: Optional[Event] = None,
        hooks: Optional[KernelHooks] = None,
    ) -> Any:
        """:meth:`run` for the compiled lane (installed as ``self.run``).

        Identical control flow, with phase 1 (heap entries at the
        current instant) served by the C kernel's ``ck_drain``: Python
        events come back one at a time as slot handles and go through
        exactly the dispatch block of the Python lane; in-kernel pool
        completion timers are consumed entirely inside the kernel
        (stale-generation drop, settle, water-fill, re-arm) and only
        surface when jobs actually finished, for the pool wrapper to
        fire their completion events.  Phases 2 and 3 are verbatim
        copies of the Python lane's.
        """
        now = self.now
        if until is not None and until < now:
            raise SimulationError(f"until={until!r} lies in the past (now={now!r})")
        if stop is not None and stop._processed:
            return stop._value
        # locals-bound hot state
        agenda = self._agenda
        lib = agenda._lib
        c = agenda._c
        drain = lib.ck_drain
        ck_peek = lib.ck_peek
        ck_heap_len = lib.ck_heap_len
        slots = agenda._slots
        free_slots = agenda._free
        h_out = agenda._h_out
        p_out = agenda._p_out
        c_pools = self._c_pools
        dq = agenda._dq
        popleft = dq.popleft
        until_t = float("inf") if until is None else until
        counter = target = None
        if hooks is not None:
            counter = hooks.counter
            target = hooks.target
            if len(counter) >= target:
                return None
        pool = self._timeout_pool
        pool_limit = self.TIMEOUT_POOL_LIMIT
        free_threshold = self._FREE_REFCOUNT + 1
        getrefcount = sys.getrefcount
        timeout_class = Timeout
        now_t = agenda._now
        event_class = Event
        event_pool = self._event_pool
        try:
            while True:
                # -- phase 1: heap entries at the current instant,
                #    popped by the C kernel ---------------------------
                while True:
                    kind = drain(c, now_t, h_out, p_out)
                    if kind == 0:
                        break
                    if kind == 2:
                        # a pool completion timer finished jobs: fire
                        # their events (same-instant FIFO appends, no
                        # sequence numbers — exactly the Python lane)
                        c_pools[p_out[0]]._finish_from_c()
                        continue
                    slot = h_out[0]
                    event = slots[slot]
                    slots[slot] = None
                    free_slots.append(slot)
                    event._processed = True
                    callback = event._cb
                    if callback is not None:
                        event._cb = None
                        callbacks = event.callbacks
                        if callbacks is None:
                            callback(event)
                        else:
                            event.callbacks = None
                            callback(event)
                            for callback in callbacks:
                                callback(event)
                    else:
                        callbacks = event.callbacks
                        if callbacks is not None:
                            event.callbacks = None
                            for callback in callbacks:
                                callback(event)
                    if event is stop:
                        return event._value
                    if (
                        event.__class__ is timeout_class
                        and len(pool) < pool_limit
                        and getrefcount(event) == free_threshold
                    ):
                        event._value = None
                        pool.append(event)
                    elif (
                        event.__class__ is event_class
                        and len(event_pool) < pool_limit
                        and getrefcount(event) == free_threshold
                    ):
                        event._value = None
                        event_pool.append(event)
                    if counter is not None and len(counter) >= target:
                        return None
                # -- phase 2: the same-instant FIFO (verbatim) --------
                while dq:
                    event = popleft()
                    event._processed = True
                    callback = event._cb
                    if callback is not None:
                        event._cb = None
                        callbacks = event.callbacks
                        if callbacks is None:
                            callback(event)
                        else:
                            event.callbacks = None
                            callback(event)
                            for callback in callbacks:
                                callback(event)
                    else:
                        callbacks = event.callbacks
                        if callbacks is not None:
                            event.callbacks = None
                            for callback in callbacks:
                                callback(event)
                    if event is stop:
                        return event._value
                    if (
                        event.__class__ is event_class
                        and len(event_pool) < pool_limit
                        and getrefcount(event) == free_threshold
                    ):
                        event._value = None
                        event_pool.append(event)
                    elif (
                        event.__class__ is timeout_class
                        and len(pool) < pool_limit
                        and getrefcount(event) == free_threshold
                    ):
                        event._value = None
                        pool.append(event)
                    if counter is not None and len(counter) >= target:
                        return None
                # -- phase 3: advance virtual time --------------------
                if ck_heap_len(c):
                    when = ck_peek(c)
                    if when > until_t:
                        self.now = until
                        agenda._now = until
                        return None
                    now_t = when
                    self.now = when
                    agenda._now = when
                else:
                    break
        finally:
            agenda.flush()
        if until is not None:
            self.now = until
            agenda._now = until
        if stop is not None and stop._processed:
            return stop._value
        return None
