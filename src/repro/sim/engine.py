"""A minimal, deterministic discrete-event simulation engine.

The engine follows the classic event/process design (as popularized by
SimPy) but is intentionally small and dependency free:

* :class:`Simulator` owns the virtual clock and a binary-heap agenda.
* :class:`Event` is a one-shot occurrence with callbacks and a value.
* :class:`Process` wraps a Python generator; each ``yield``-ed event
  suspends the process until the event fires.

Determinism matters for reproducing the paper's experiments, so ties in
time are broken by a monotonically increasing sequence number: two
events scheduled for the same instant fire in scheduling order.

The hot path is tuned for the workload the DBMS model generates —
millions of events, almost all of which have exactly one waiter:

* **Single-waiter fast path** — an event stores its first callback in a
  dedicated slot and only allocates a callback list when a second
  waiter appears, so the common yield/resume cycle never touches a
  list.
* **Timeout recycling** — fired :class:`Timeout` events that nobody
  references anymore (checked via the CPython refcount) return to a
  per-simulator free list and are reused by the next
  :meth:`Simulator.timeout` call instead of being reallocated.
* **Allocation-free stepping** — :class:`Process` resumes its generator
  directly (no per-step closures) and schedules itself without
  intermediate helper events beyond the initial bootstrap.

None of this changes observable semantics: event ordering, values and
callback sequencing are identical to the straightforward
implementation.
"""

from __future__ import annotations

import heapq
import sys
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence inside a :class:`Simulator`.

    An event starts *pending*, becomes *triggered* once scheduled to
    fire, and finally *processed* after its callbacks ran.  Processes
    wait on events by yielding them.
    """

    __slots__ = ("sim", "_cb", "callbacks", "_value", "_ok", "_triggered", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        # Single-waiter fast path: the first callback lives in ``_cb``;
        # ``callbacks`` is only allocated when a second waiter appears.
        self._cb: Optional[Callable[["Event"], None]] = None
        self.callbacks: Optional[list] = None
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self._processed

    @property
    def value(self) -> Any:
        """The event's value (or exception) once triggered."""
        return self._value

    @property
    def ok(self) -> bool:
        """False when the event carries a failure (an exception)."""
        return self._ok

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay!r}")
        self._triggered = True
        self._value = value
        self._ok = True
        sim = self.sim
        sim._sequence = sequence = sim._sequence + 1
        heapq.heappush(sim._agenda, (sim.now + delay, sequence, self))
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire carrying ``exception``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._value = exception
        self._ok = False
        self.sim._schedule(self, delay)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event was already processed the callback runs
        immediately.
        """
        if self._processed:
            callback(self)
        elif self._cb is None:
            self._cb = callback
        elif self.callbacks is None:
            self.callbacks = [callback]
        else:
            self.callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Detach a pending callback (no-op if absent or already fired)."""
        if self._processed:
            return
        # == not `is`: bound methods are fresh objects on every access
        if self._cb == callback:
            # promote the overflow head to preserve callback order
            if self.callbacks:
                self._cb = self.callbacks.pop(0)
            else:
                self._cb = None
        elif self.callbacks is not None:
            try:
                self.callbacks.remove(callback)
            except ValueError:
                pass


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        # Inlined Event.__init__ + Simulator._schedule: timeouts are the
        # most common event by far, so their construction is kept flat.
        self.sim = sim
        self._cb = None
        self.callbacks = None
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        sim._sequence = sequence = sim._sequence + 1
        heapq.heappush(sim._agenda, (sim.now + delay, sequence, self))


class AnyOf(Event):
    """Fires when the first of ``events`` fires.

    The value is a dict mapping the fired event(s) to their values.
    """

    __slots__ = ("_events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            event.add_callback(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed({event: event.value})


class AllOf(Event):
    """Fires once all of ``events`` fired.

    The value is a dict mapping each event to its value.
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._remaining = len(self._events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            event.add_callback(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e.value for e in self._events})


class Process(Event):
    """A generator-based simulation process.

    The generator yields :class:`Event` instances; the process resumes
    when the yielded event fires, receiving the event's value as the
    result of the ``yield`` expression.  The process itself is an event
    that fires with the generator's return value, so processes can wait
    on each other.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        bootstrap = Event(sim)
        bootstrap._cb = self._resume
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not finished yet."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process blocked on an event detaches it from that event.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        waiting_on = self._waiting_on
        if waiting_on is not None:
            waiting_on.remove_callback(self._resume)
        self._waiting_on = None
        wakeup = Event(self.sim)
        wakeup._cb = lambda event: self._step(Interrupt(cause))
        wakeup.succeed()

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self._step(event._value, throw=not event._ok)

    def _step(self, value: Any, throw: bool = True) -> None:
        try:
            if throw and isinstance(value, BaseException):
                target = self._generator.throw(value)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if self.sim.strict:
                raise
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        self._waiting_on = target
        # inlined add_callback: the single-waiter case is ~all of them
        if target._processed:
            self._resume(target)
        elif target._cb is None:
            target._cb = self._resume
        else:
            target.add_callback(self._resume)


class Simulator:
    """The simulation clock and event agenda.

    Usage::

        sim = Simulator()

        def hello():
            yield sim.timeout(3.0)
            return "done"

        proc = sim.process(hello())
        sim.run()
        assert sim.now == 3.0 and proc.value == "done"

    Parameters
    ----------
    strict:
        When true (the default), an exception escaping a process body
        propagates out of :meth:`run` instead of silently failing the
        process event.
    """

    #: Upper bound on the timeout free list (see :meth:`timeout`).
    TIMEOUT_POOL_LIMIT = 128

    #: ``sys.getrefcount`` result for an object referenced only by one
    #: local variable (the argument slot accounts for the rest); a fired
    #: timeout at or below this count is provably unreferenced by user
    #: code and safe to recycle.
    _FREE_REFCOUNT = sys.getrefcount(object())

    def __init__(self, strict: bool = True):
        self.now: float = 0.0
        self.strict = strict
        self._agenda: list = []
        self._sequence = 0
        self._timeout_pool: list = []
        #: Timeout events served from the free list (introspection/tests).
        self.timeout_reuses = 0

    # -- event factories ------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now.

        Serves from the pre-allocated free list of recycled timeouts
        when possible; recycled instances are indistinguishable from
        fresh ones (see :meth:`step` for the safety argument).
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay: {delay!r}")
            event = pool.pop()
            event._value = value
            event._ok = True
            event._triggered = True
            event._processed = False
            self._sequence = sequence = self._sequence + 1
            heapq.heappush(self._agenda, (self.now + delay, sequence, event))
            self.timeout_reuses += 1
            return event
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a process from ``generator`` immediately."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event firing when every one of ``events`` fired."""
        return AllOf(self, events)

    # -- scheduling -----------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay!r}")
        self._sequence += 1
        heapq.heappush(self._agenda, (self.now + delay, self._sequence, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._agenda[0][0] if self._agenda else float("inf")

    def step(self) -> None:
        """Process the single next event on the agenda.

        After its callbacks ran, a plain :class:`Timeout` that nothing
        else references (verified via the CPython refcount, so events
        held by user code are never touched) is recycled into the
        timeout free list.
        """
        if not self._agenda:
            raise SimulationError("agenda is empty")
        when, _seq, event = heapq.heappop(self._agenda)
        self.now = when
        event._processed = True
        callback = event._cb
        if callback is not None:
            event._cb = None
            callbacks = event.callbacks
            if callbacks is None:
                callback(event)
            else:
                event.callbacks = None
                callback(event)
                for callback in callbacks:
                    callback(event)
        else:
            callbacks = event.callbacks
            if callbacks is not None:
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
        if (
            event.__class__ is Timeout
            and len(self._timeout_pool) < self.TIMEOUT_POOL_LIMIT
            and sys.getrefcount(event) == self._FREE_REFCOUNT + 1
        ):
            event._value = None
            self._timeout_pool.append(event)

    def run(self, until: Optional[float] = None, stop: Optional[Event] = None) -> Any:
        """Run until the agenda drains, ``until`` is reached, or ``stop`` fires.

        Returns the value of ``stop`` when given and fired.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"until={until!r} lies in the past (now={self.now!r})")
        while self._agenda:
            if stop is not None and stop.processed:
                return stop.value
            if until is not None and self.peek() > until:
                self.now = until
                return stop.value if stop is not None and stop.processed else None
            self.step()
        if until is not None:
            self.now = until
        if stop is not None and stop.processed:
            return stop.value
        return None
