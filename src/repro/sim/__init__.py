"""Discrete-event simulation kernel.

This subpackage provides the substrate on which the simulated DBMS
(:mod:`repro.dbms`) runs: a deterministic event loop with generator
based processes (:mod:`repro.sim.engine`), seeded random-number streams
(:mod:`repro.sim.random`), and the family of service-time distributions
used throughout the paper, including two-phase hyperexponential fitting
from a mean and a squared coefficient of variation
(:mod:`repro.sim.distributions`).
"""

from repro.sim.engine import (
    Agenda,
    AllOf,
    AnyOf,
    CAgenda,
    Event,
    Interrupt,
    KernelHooks,
    Process,
    SimulationError,
    Simulator,
    Timeout,
    resolve_kernel_lane,
)
from repro.sim.distributions import (
    BlockSampler,
    Deterministic,
    Distribution,
    Empirical,
    Erlang,
    Exponential,
    Hyperexponential,
    LogNormal,
    Mixture,
    Pareto,
    Uniform,
    fit_hyperexponential,
)
from repro.sim.random import RandomStreams

__all__ = [
    "Agenda",
    "AllOf",
    "AnyOf",
    "BlockSampler",
    "CAgenda",
    "Deterministic",
    "Distribution",
    "Empirical",
    "Erlang",
    "Event",
    "Exponential",
    "Hyperexponential",
    "Interrupt",
    "KernelHooks",
    "LogNormal",
    "Mixture",
    "Pareto",
    "Process",
    "RandomStreams",
    "SimulationError",
    "Simulator",
    "Timeout",
    "Uniform",
    "fit_hyperexponential",
    "resolve_kernel_lane",
]
