"""The unified service-station protocol every simulated resource speaks.

A transaction moving through the DBMS passes a sequence of *stations* —
the CPU pool, the disk array, the WAL disk, the lock table, and any
scenario-specific extras such as a network/front-end delay.  Before
this layer each resource grew its own acquire/serve/release plumbing
and its own metrics; :class:`Station` factors the shared surface out:

* **Lifecycle** — ``acquire`` (admission: lock grants, queue entry),
  ``serve`` (timed service for a demand), ``release`` (give back what
  ``acquire`` granted).  Pure servers only implement ``serve``; the
  lock table only implements ``acquire``/``release``.
* **Metrics** — every station reports ``busy_time``,
  ``requests_served`` and ``utilization(elapsed)``, plus per-priority-
  class counters (:class:`ClassStats`) fed through the
  :meth:`Station._record` hook, so per-class breakdowns need no
  resource-specific code.

The engine composes stations through this protocol (see
:attr:`repro.dbms.engine.DatabaseEngine.stations`); adding a resource
to the model means subclassing :class:`Station` and registering it —
no engine surgery.  :class:`DelayStation` is the drop-in example: an
infinite-server delay (network hop, front-end parsing) that slots into
the pipeline without touching any other layer.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.sim.distributions import Distribution
from repro.sim.engine import Event, Simulator


class ClassStats:
    """Per-priority-class counters one station accumulates."""

    __slots__ = ("requests", "service_time", "wait_time")

    def __init__(self):
        self.requests = 0
        self.service_time = 0.0
        self.wait_time = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "service_time": self.service_time,
            "wait_time": self.wait_time,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClassStats(requests={self.requests}, "
            f"service_time={self.service_time:.6g}, "
            f"wait_time={self.wait_time:.6g})"
        )


class Station:
    """Base class: acquire/serve/release plus per-class metrics.

    Subclasses call ``Station.__init__(self, sim, name)`` first, then
    override whichever lifecycle phases the resource actually has.
    The defaults make every phase optional: ``acquire`` grants
    immediately, ``release`` is a no-op, and ``serve`` must be
    overridden by stations that perform timed service.
    """

    #: Whether this station is a server whose utilization belongs in a
    #: run's utilization snapshot (the lock table, a pure admission
    #: station, sets this False).
    is_server = True

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.per_class: Dict[int, ClassStats] = {}

    # -- lifecycle ---------------------------------------------------------

    def acquire(self, *args, **kwargs) -> Event:
        """Admission phase; the default grants immediately."""
        event = Event(self.sim)
        event.succeed()
        return event

    def serve(self, demand: float, priority: int = 0, weight: float = 1.0) -> Event:
        """Timed service of ``demand``; fires when served."""
        raise NotImplementedError(f"station {self.name!r} does not serve demands")

    def release(self, *args, **kwargs) -> None:
        """Give back whatever ``acquire`` granted; default no-op."""

    # -- metrics -----------------------------------------------------------

    def _record(
        self, priority: int, service_time: float = 0.0, wait_time: float = 0.0
    ) -> None:
        """Count one served/granted request for ``priority``'s class."""
        stats = self.per_class.get(priority)
        if stats is None:
            stats = self.per_class[priority] = ClassStats()
        stats.requests += 1
        stats.service_time += service_time
        stats.wait_time += wait_time

    def class_stats(self) -> Dict[int, ClassStats]:
        """Snapshot of the per-class counters (live objects)."""
        return dict(self.per_class)

    @property
    def busy_time(self) -> float:
        """Cumulative busy time (subclass-specific meaning)."""
        return 0.0

    @property
    def requests_served(self) -> int:
        """Requests this station completed, summed over classes."""
        return sum(stats.requests for stats in self.per_class.values())

    def utilization(self, elapsed: float) -> float:
        """Busy fraction of ``elapsed`` (infinite servers: mean jobs)."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / elapsed


class DelayStation(Station):
    """An infinite-server delay: every request is served immediately.

    Models network hops, front-end parsing, or any per-request latency
    with no queueing.  ``utilization`` reports the time-average number
    of requests in the delay (Little's law), which can exceed 1.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "delay",
        delay: Optional[Distribution] = None,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(sim, name)
        self.delay = delay
        self._rng = rng
        self._busy_time = 0.0

    def serve(self, demand: float = 0.0, priority: int = 0, weight: float = 1.0) -> Event:
        """Delay for ``demand`` seconds, or a sampled delay when 0."""
        if demand <= 0.0 and self.delay is not None:
            if self._rng is None:
                raise ValueError(f"station {self.name!r} has no rng to sample with")
            demand = self.delay.sample(self._rng)
        if demand < 0:
            raise ValueError(f"delay must be non-negative, got {demand!r}")
        self._busy_time += demand
        self._record(priority, service_time=demand)
        return self.sim.timeout(demand)

    @property
    def busy_time(self) -> float:
        return self._busy_time
