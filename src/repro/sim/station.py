"""The unified service-station protocol every simulated resource speaks.

A transaction moving through the DBMS passes a sequence of *stations* —
the CPU pool, the disk array, the WAL disk, the lock table, and any
scenario-specific extras such as a network/front-end delay.  Before
this layer each resource grew its own acquire/serve/release plumbing
and its own metrics; :class:`Station` factors the shared surface out:

* **Lifecycle** — ``acquire`` (admission: lock grants, queue entry),
  ``serve`` (timed service for a demand), ``release`` (give back what
  ``acquire`` granted).  Pure servers only implement ``serve``; the
  lock table only implements ``acquire``/``release``.
* **Metrics** — every station reports ``busy_time``,
  ``requests_served`` and ``utilization(elapsed)``, plus per-priority-
  class counters (:class:`ClassStats`) fed through the
  :meth:`Station._record` hook, so per-class breakdowns need no
  resource-specific code.

The engine composes stations through this protocol (see
:attr:`repro.dbms.engine.DatabaseEngine.stations`); adding a resource
to the model means subclassing :class:`Station` and registering it —
no engine surgery.  :class:`DelayStation` is the drop-in example: an
infinite-server delay (network hop, front-end parsing) that slots into
the pipeline without touching any other layer.

The protocol is also what lets a station swap its *implementation*
without the engine noticing: on the compiled kernel lane the CPU slot
is filled by :class:`repro.dbms.cpu.CProcessorSharingPool` (the cffi
water-fill/settle kernel) via :func:`repro.dbms.cpu.make_ps_pool`,
bit-identical to the pure-Python pool behind the same ``Station``
surface.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.sim.distributions import BlockSampler, Distribution
from repro.sim.engine import Event, SimulationError, Simulator


class ClassStats:
    """Per-priority-class counters one station accumulates."""

    __slots__ = ("requests", "service_time", "wait_time")

    def __init__(self):
        self.requests = 0
        self.service_time = 0.0
        self.wait_time = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "service_time": self.service_time,
            "wait_time": self.wait_time,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClassStats(requests={self.requests}, "
            f"service_time={self.service_time:.6g}, "
            f"wait_time={self.wait_time:.6g})"
        )


class Station:
    """Base class: acquire/serve/release plus per-class metrics.

    Subclasses call ``Station.__init__(self, sim, name)`` first, then
    override whichever lifecycle phases the resource actually has.
    The defaults make every phase optional: ``acquire`` grants
    immediately, ``release`` is a no-op, and ``serve`` must be
    overridden by stations that perform timed service.
    """

    #: Whether this station is a server whose utilization belongs in a
    #: run's utilization snapshot (the lock table, a pure admission
    #: station, sets this False).
    is_server = True

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.per_class: Dict[int, ClassStats] = {}

    # -- lifecycle ---------------------------------------------------------

    def acquire(self, *args, **kwargs) -> Event:
        """Admission phase; the default grants immediately."""
        return self.sim.fired()

    def serve(self, demand: float, priority: int = 0, weight: float = 1.0) -> Event:
        """Timed service of ``demand``; fires when served."""
        raise NotImplementedError(f"station {self.name!r} does not serve demands")

    def release(self, *args, **kwargs) -> None:
        """Give back whatever ``acquire`` granted; default no-op."""

    # -- metrics -----------------------------------------------------------

    def _record(
        self, priority: int, service_time: float = 0.0, wait_time: float = 0.0
    ) -> None:
        """Count one served/granted request for ``priority``'s class."""
        stats = self.per_class.get(priority)
        if stats is None:
            stats = self.per_class[priority] = ClassStats()
        stats.requests += 1
        stats.service_time += service_time
        stats.wait_time += wait_time

    def class_stats(self) -> Dict[int, ClassStats]:
        """Snapshot of the per-class counters (live objects)."""
        return dict(self.per_class)

    @property
    def busy_time(self) -> float:
        """Cumulative busy time (subclass-specific meaning)."""
        return 0.0

    @property
    def requests_served(self) -> int:
        """Requests this station completed, summed over classes."""
        return sum(stats.requests for stats in self.per_class.values())

    def utilization(self, elapsed: float) -> float:
        """Busy fraction of ``elapsed`` (infinite servers: mean jobs)."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / elapsed


class DelayStation(Station):
    """An infinite-server delay: every request is served immediately.

    Models network hops, front-end parsing, or any per-request latency
    with no queueing.  ``utilization`` reports the time-average number
    of requests in the delay (Little's law), which can exceed 1.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "delay",
        delay: Optional[Distribution] = None,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(sim, name)
        self.delay = delay
        self._rng = rng
        # the delay stream has one consumer, so it is block-sampled
        self._sample = (
            BlockSampler(delay, rng) if delay is not None and rng is not None else None
        )
        self._busy_time = 0.0

    def serve(self, demand: float = 0.0, priority: int = 0, weight: float = 1.0) -> Event:
        """Delay for ``demand`` seconds, or a sampled delay when 0."""
        if demand <= 0.0 and self.delay is not None:
            if self._sample is None:
                raise ValueError(f"station {self.name!r} has no rng to sample with")
            demand = self._sample()
        if demand < 0:
            raise ValueError(f"delay must be non-negative, got {demand!r}")
        self._busy_time += demand
        self._record(priority, service_time=demand)
        return self.sim.timeout(demand)

    @property
    def busy_time(self) -> float:
        return self._busy_time


# -- routing (cluster front-end) ----------------------------------------------


class RoutingPolicy:
    """Picks the shard one transaction is dispatched to.

    Policies are deterministic functions of their own internal state
    and the live shard loads — no randomness, so clustered runs stay
    bit-identical under any ``--jobs N``.  ``choose`` receives the
    transaction and the router's target list and returns a shard index.
    """

    name = "routing"

    def choose(self, tx, targets: Sequence) -> int:
        raise NotImplementedError


class RoundRobinRouting(RoutingPolicy):
    """Cycle through the shards in order."""

    name = "round_robin"

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards!r}")
        self._next = 0
        self._n = num_shards

    def choose(self, tx, targets: Sequence) -> int:
        index = self._next
        self._next = (index + 1) % self._n
        return index


class HashRouting(RoutingPolicy):
    """Hash-partition: a transaction's id pins it to one shard.

    Models key-partitioned data where a transaction must run on the
    shard holding its partition.  The hash is a fixed 64-bit mix (not
    Python's salted ``hash``), so placement is stable across processes
    and runs.
    """

    name = "hash"

    def choose(self, tx, targets: Sequence) -> int:
        return self.mix(tx.tid) % len(targets)

    @staticmethod
    def mix(key: int) -> int:
        """SplitMix64 finalizer: a well-dispersed 64-bit integer hash."""
        z = (key + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        return z ^ (z >> 31)


class LeastInFlightRouting(RoutingPolicy):
    """Join the shard with the fewest transactions admitted or queued.

    Ties break toward the lowest shard index, which keeps the decision
    deterministic.
    """

    name = "least_in_flight"

    def choose(self, tx, targets: Sequence) -> int:
        best = 0
        best_load = None
        for index, target in enumerate(targets):
            load = target.in_service + target.queue_length
            if best_load is None or load < best_load:
                best, best_load = index, load
        return best


class WeightedRouting(RoutingPolicy):
    """Smooth weighted round-robin over heterogeneous shards.

    The classic nginx algorithm: each pick adds every shard's weight to
    its running score, dispatches to the highest score, and subtracts
    the weight total from the winner — giving proportional shares with
    maximal interleaving, deterministically.
    """

    name = "weighted"

    def __init__(self, weights: Sequence[float]):
        if not weights:
            raise ValueError("weights must be non-empty")
        if any(w <= 0 for w in weights):
            raise ValueError(f"weights must be positive, got {tuple(weights)!r}")
        self.weights = tuple(float(w) for w in weights)
        self._scores = [0.0] * len(self.weights)
        self._total = sum(self.weights)

    def choose(self, tx, targets: Sequence) -> int:
        scores = self._scores
        for index, weight in enumerate(self.weights):
            scores[index] += weight
        best = max(range(len(scores)), key=lambda i: (scores[i], -i))
        scores[best] -= self._total
        return best


#: Routing-policy registry consumed by cluster configs and the CLI.
ROUTING_POLICIES = ("round_robin", "hash", "least_in_flight", "weighted")


def make_routing(
    name: str, num_shards: int, weights: Optional[Sequence[float]] = None
) -> RoutingPolicy:
    """Build the named routing policy for ``num_shards`` shards."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards!r}")
    if name == "round_robin":
        return RoundRobinRouting(num_shards)
    if name == "hash":
        return HashRouting()
    if name == "least_in_flight":
        return LeastInFlightRouting()
    if name == "weighted":
        if weights is None:
            weights = [1.0] * num_shards
        if len(weights) != num_shards:
            raise ValueError(
                f"need {num_shards} weights, got {len(weights)}: {tuple(weights)!r}"
            )
        return WeightedRouting(weights)
    raise ValueError(
        f"unknown routing policy {name!r}; available: {', '.join(ROUTING_POLICIES)}"
    )


class RouterStation(Station):
    """The cluster front-end: dispatches transactions to shard targets.

    Targets speak the :class:`~repro.core.frontend.ExternalScheduler`
    surface (``submit``, ``in_service``, ``queue_length``) but are only
    duck-typed here, keeping the simulation layer free of core-layer
    imports.  Routing is synchronous — ``submit`` forwards to the
    chosen shard immediately and returns that shard's completion event
    — so a one-shard router is event-for-event identical to calling
    the shard directly.

    The router enforces the no-double-routing invariant (a transaction
    id is accepted at most once) and accumulates per-shard dispatch
    counts plus per-priority-class :class:`ClassStats`, which the
    invariant test-suite checks against the shard-side counters.

    Liveness: each target carries two flags — ``alive`` (fault state,
    flipped by kill/restore events) and ``in_rotation`` (administrative
    state, flipped by elastic capacity control).  A shard is routable
    only when both hold.  When the policy picks an unroutable shard the
    router deterministically falls over to the next routable index
    (cyclic scan), so faulted runs stay bit-identical for any
    ``--jobs N``.  When every target is unroutable, ``submit`` raises
    :class:`~repro.sim.engine.SimulationError` rather than queueing
    blindly.
    """

    is_server = False

    def __init__(self, sim: Simulator, targets: Sequence, policy: RoutingPolicy,
                 name: str = "router"):
        if not targets:
            raise ValueError("router needs at least one target shard")
        super().__init__(sim, name)
        self.targets = list(targets)
        self.policy = policy
        self.routed_by_shard: List[int] = [0] * len(self.targets)
        self._routed_tids: set = set()
        self.alive: List[bool] = [True] * len(self.targets)
        self.in_rotation: List[bool] = [True] * len(self.targets)
        self.rerouted = 0
        self.rerouted_from: List[int] = [0] * len(self.targets)
        self.rerouted_to: List[int] = [0] * len(self.targets)
        #: Optional per-shard circuit breakers
        #: (:class:`~repro.core.resilience.ShardBreaker`, duck-typed:
        #: ``admit(now) -> bool``), installed by the resilience runtime.
        #: None keeps routing health-blind — the pre-resilience path,
        #: byte-identical.
        self.breakers: Optional[List] = None

    # -- liveness ----------------------------------------------------------

    def set_alive(self, index: int, alive: bool) -> None:
        """Flip a target's fault-liveness flag (kill/restore)."""
        self._check_index(index)
        self.alive[index] = bool(alive)

    def set_rotation(self, index: int, in_rotation: bool) -> None:
        """Flip a target's administrative in-rotation flag (elastic)."""
        self._check_index(index)
        self.in_rotation[index] = bool(in_rotation)

    def routable(self, index: int) -> bool:
        """Whether a target currently accepts new work."""
        return self.alive[index] and self.in_rotation[index]

    def live_targets(self) -> List[int]:
        """Indices of targets currently accepting new work."""
        return [i for i in range(len(self.targets)) if self.routable(i)]

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self.targets):
            raise ValueError(
                f"shard index {index} out of range for {len(self.targets)} targets"
            )

    def _fallback(self, index: int) -> int:
        """Next routable index after ``index``, scanning cyclically.

        Administrative parking must never make the cluster unroutable:
        when every in-rotation shard is dead (an elastic controller
        parked the survivor just before a kill landed), an alive but
        parked shard takes the work as the target of last resort.  Only
        a cluster with no alive shard at all raises — the fault axis'
        liveness validation is supposed to make that unreachable.
        """
        n = len(self.targets)
        for step in range(1, n):
            candidate = (index + step) % n
            if self.routable(candidate):
                return candidate
        for step in range(n):
            candidate = (index + step) % n
            if self.alive[candidate]:
                return candidate
        raise SimulationError(
            f"router {self.name!r} has no live targets to route to"
        )

    def submit(self, tx) -> Event:
        """Route ``tx`` to a shard; returns the shard's completion event."""
        if tx.tid in self._routed_tids:
            raise ValueError(f"transaction {tx.tid} was already routed")
        index = self.policy.choose(tx, self.targets)
        if not 0 <= index < len(self.targets):
            raise ValueError(
                f"routing policy {self.policy.name!r} chose shard {index} "
                f"of {len(self.targets)}"
            )
        if not self.routable(index):
            index = self._fallback(index)
        if self.breakers is not None:
            index = self._breaker_admit(index)
        self._routed_tids.add(tx.tid)
        self.routed_by_shard[index] += 1
        self._record(tx.priority)
        return self.targets[index].submit(tx)

    def submit_to(self, tx, index: int) -> Event:
        """Route ``tx`` to a specific shard (2PC participant placement).

        The coordinator's deterministic participant pick is
        authoritative, so no policy choice and no breaker consultation
        — but a dead or parked shard still falls back cyclically, so a
        fault timeline never strands a branch.
        """
        if tx.tid in self._routed_tids:
            raise ValueError(f"transaction {tx.tid} was already routed")
        self._check_index(index)
        if not self.routable(index):
            index = self._fallback(index)
        self._routed_tids.add(tx.tid)
        self.routed_by_shard[index] += 1
        self._record(tx.priority)
        return self.targets[index].submit(tx)

    def _breaker_admit(self, index: int) -> int:
        """Health-aware admission: the first routable shard whose
        breaker admits, scanning cyclically from the policy's choice.
        Fail-open: when every breaker refuses, the original (routable)
        choice takes the transaction anyway — shedding is the
        admission queue's job, not the router's."""
        now = self.sim.now
        if self.breakers[index].admit(now):
            return index
        n = len(self.targets)
        for step in range(1, n):
            candidate = (index + step) % n
            if self.routable(candidate) and self.breakers[candidate].admit(now):
                return candidate
        return index

    def release(self, tid: int) -> None:
        """Forget a routed transaction id so it may be routed again.

        The resilience layer's retry hook: a timed-out or shed
        transaction re-enters through ``submit``, which would otherwise
        trip the no-double-routing guard.
        """
        self._routed_tids.discard(tid)

    def reroute(self, tx, source: int) -> None:
        """Re-home an admitted transaction drained from a dead shard.

        The transaction keeps its arrival time and completion event;
        the receiving shard takes it via ``adopt``.  Per-shard transfer
        counters keep the conservation law checkable:
        ``routed_to[i] + rerouted_to[i] - rerouted_from[i]`` equals the
        work shard ``i`` currently holds or has completed.
        """
        self._check_index(source)
        index = self.policy.choose(tx, self.targets)
        if not 0 <= index < len(self.targets):
            raise ValueError(
                f"routing policy {self.policy.name!r} chose shard {index} "
                f"of {len(self.targets)}"
            )
        if not self.routable(index):
            index = self._fallback(index)
        self.rerouted += 1
        self.rerouted_from[source] += 1
        self.rerouted_to[index] += 1
        self.targets[index].adopt(tx)

    @property
    def routed(self) -> int:
        """Total transactions dispatched across all shards."""
        return sum(self.routed_by_shard)

    @property
    def in_service(self) -> int:
        """Transactions inside any shard's engine."""
        return sum(t.in_service for t in self.targets)

    @property
    def queue_length(self) -> int:
        """Transactions waiting in any shard's external queue."""
        return sum(t.queue_length for t in self.targets)
