"""Exact Mean Value Analysis for closed product-form networks.

This solves the paper's Figure 6 model: MPL "clients" circulating among
the DBMS's internal resources (CPUs, disks), each an exponential
station.  Fixed-rate stations use the classic Reiser–Lavenberg MVA
recursion; multi-server stations (e.g. a 2-CPU pool) use the exact
load-dependent extension with per-station marginal queue-length
probabilities.

Only *relative* service demands matter for the throughput-vs-MPL ratio
the tuner needs (§4.1), so callers usually feed demands normalized to
the bottleneck.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple


@dataclasses.dataclass(frozen=True)
class Station:
    """One service station of the closed network.

    Parameters
    ----------
    name:
        Label for reporting.
    demand:
        Service demand per visit of one job (seconds, or any unit —
        throughputs come out in its inverse).
    servers:
        Number of parallel servers; ``servers > 1`` makes the station
        load-dependent with rate ``min(n, servers) / demand``.
    delay:
        A pure delay (infinite-server) station, e.g. client think time.
    """

    name: str
    demand: float
    servers: int = 1
    delay: bool = False

    def __post_init__(self) -> None:
        if self.demand < 0:
            raise ValueError(f"demand must be non-negative, got {self.demand!r}")
        if self.servers < 1:
            raise ValueError(f"servers must be >= 1, got {self.servers!r}")


@dataclasses.dataclass(frozen=True)
class MvaResult:
    """Solution of the closed network for populations 1..N."""

    stations: Tuple[Station, ...]
    throughputs: Tuple[float, ...]  # X(n), index n-1
    response_times: Tuple[Dict[str, float], ...]  # per-station R_i(n)
    queue_lengths: Tuple[Dict[str, float], ...]  # per-station Q_i(n)

    def throughput(self, population: int) -> float:
        """System throughput with ``population`` circulating jobs."""
        if not 1 <= population <= len(self.throughputs):
            raise ValueError(
                f"population must be in 1..{len(self.throughputs)}, got {population!r}"
            )
        return self.throughputs[population - 1]

    @property
    def max_throughput(self) -> float:
        """The asymptotic bound 1 / max(demand / servers)."""
        bottleneck = max(
            (s.demand / s.servers for s in self.stations if not s.delay),
            default=0.0,
        )
        if bottleneck == 0:
            return float("inf")
        return 1.0 / bottleneck

    def relative_throughput(self, population: int) -> float:
        """X(n) as a fraction of the asymptotic maximum."""
        maximum = self.max_throughput
        if maximum == float("inf"):
            return 1.0
        return self.throughput(population) / maximum


def mva(stations: Sequence[Station], population: int) -> MvaResult:
    """Solve the closed network exactly for populations 1..``population``.

    Mixed networks are supported: fixed-rate stations use the standard
    recursion ``R_i(n) = D_i (1 + Q_i(n-1))``, multi-server stations
    the load-dependent recursion over marginal probabilities, and delay
    stations contribute ``R_i = D_i``.
    """
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population!r}")
    if not stations:
        raise ValueError("at least one station is required")

    queueing = [s for s in stations if not s.delay]
    think_time = sum(s.demand for s in stations if s.delay)

    # State carried across the population recursion.
    queue_len: Dict[str, float] = {s.name: 0.0 for s in queueing}
    # marginal[name][j] = P(j jobs at station | population n), for
    # load-dependent stations only.
    marginal: Dict[str, List[float]] = {
        s.name: [1.0] for s in queueing if s.servers > 1
    }

    throughputs: List[float] = []
    response_hist: List[Dict[str, float]] = []
    queue_hist: List[Dict[str, float]] = []

    for n in range(1, population + 1):
        responses: Dict[str, float] = {}
        for station in queueing:
            if station.servers == 1:
                responses[station.name] = station.demand * (
                    1.0 + queue_len[station.name]
                )
            else:
                probs = marginal[station.name]  # P(j | n-1), j = 0..n-1
                r = 0.0
                for j in range(1, n + 1):
                    rate = min(j, station.servers) / station.demand
                    r += (j / rate) * (probs[j - 1] if j - 1 < len(probs) else 0.0)
                responses[station.name] = r
        total_response = sum(responses.values())
        x = n / (think_time + total_response)
        throughputs.append(x)

        new_queues: Dict[str, float] = {}
        for station in queueing:
            new_queues[station.name] = x * responses[station.name]
            if station.servers > 1:
                old = marginal[station.name]
                new = [0.0] * (n + 1)
                for j in range(1, n + 1):
                    rate = min(j, station.servers) / station.demand
                    prev = old[j - 1] if j - 1 < len(old) else 0.0
                    new[j] = (x / rate) * prev
                new[0] = max(0.0, 1.0 - sum(new[1:]))
                marginal[station.name] = new
        queue_len = new_queues
        response_hist.append(responses)
        queue_hist.append(dict(new_queues))

    return MvaResult(
        stations=tuple(stations),
        throughputs=tuple(throughputs),
        response_times=tuple(response_hist),
        queue_lengths=tuple(queue_hist),
    )


def balanced_throughput_fraction(num_stations: int, population: int) -> float:
    """Closed form X(n)/X_max for a balanced network of single servers.

    For M identical exponential stations the exact MVA solution is
    ``X(n) = n / (D (n + M - 1))`` so the fraction of maximum
    throughput is ``n / (n + M - 1)`` — the source of the paper's
    linear minimum-MPL-vs-resources observation (Figure 7).
    """
    if num_stations < 1:
        raise ValueError(f"num_stations must be >= 1, got {num_stations!r}")
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population!r}")
    return population / (population + num_stations - 1)
