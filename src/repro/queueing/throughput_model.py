"""The paper's throughput-vs-MPL model (Figure 6 / Figure 7).

The DBMS internals are modelled as a closed network with MPL
circulating jobs over the utilized resources; service rates are
proportional to each resource's utilization in the *unlimited* system
(§4.1).  The model deliberately assumes the worst case — all counted
resources equally utilized — which makes its minimum-MPL answer an
upper bound on what the real system needs.

The key output is :meth:`ThroughputModel.min_mpl_for_fraction`: the
lowest MPL keeping throughput within a DBA-specified fraction of the
maximum, found by binary search over the exact MVA solution.  For the
balanced case this reduces to the closed form
``N* = ceil(f (M - 1) / (1 - f))`` — linear in the number of resources
M, which is exactly the straight line of circles/squares in Figure 7.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.dbms.config import HardwareConfig
from repro.queueing.mva import Station, mva


class ThroughputModel:
    """Closed-network model of relative throughput as a function of MPL.

    Parameters
    ----------
    demands:
        Relative service demands of the utilized resources (one entry
        per resource; units cancel in the relative throughput).
    servers:
        Optional per-resource server counts (defaults to 1 each).
    think_time:
        Optional client think time in the same relative units.
    """

    def __init__(
        self,
        demands: Sequence[float],
        servers: Optional[Sequence[int]] = None,
        think_time: float = 0.0,
    ):
        if not demands:
            raise ValueError("at least one resource demand is required")
        if any(d <= 0 for d in demands):
            raise ValueError(f"demands must be positive, got {list(demands)!r}")
        if servers is None:
            servers = [1] * len(demands)
        if len(servers) != len(demands):
            raise ValueError("servers and demands must have equal length")
        self.stations = [
            Station(name=f"r{i}", demand=float(d), servers=int(c))
            for i, (d, c) in enumerate(zip(demands, servers))
        ]
        if think_time > 0:
            self.stations.append(Station(name="think", demand=think_time, delay=True))
        self._cache_population = 0
        self._cache = None

    # -- constructors ---------------------------------------------------------

    @classmethod
    def balanced(cls, num_resources: int) -> "ThroughputModel":
        """The paper's worst case: ``num_resources`` equal single servers."""
        if num_resources < 1:
            raise ValueError(f"num_resources must be >= 1, got {num_resources!r}")
        return cls([1.0] * num_resources)

    @classmethod
    def from_hardware(cls, hardware: HardwareConfig, io_bound: bool = False,
                      cpu_bound: bool = False) -> "ThroughputModel":
        """Balanced model over the resources a workload utilizes.

        ``io_bound`` counts only the data disks (+ log), ``cpu_bound``
        only the CPUs; neither flag counts everything (the balanced
        CPU+I/O case).
        """
        resources = 0
        if not io_bound:
            resources += hardware.num_cpus
        if not cpu_bound:
            resources += hardware.num_disks
        return cls.balanced(max(1, resources))

    @classmethod
    def from_utilizations(
        cls,
        utilizations: Dict[str, float],
        counts: Optional[Dict[str, int]] = None,
        significance: float = 0.25,
    ) -> "ThroughputModel":
        """Build from measured per-resource utilizations (§4.1).

        Each resource class (e.g. ``{"cpu": 0.95, "disk": 0.3}``)
        contributes ``counts[name]`` stations with demand proportional
        to its utilization; classes below ``significance`` × max are
        dropped as unutilized.
        """
        if not utilizations:
            raise ValueError("utilizations must be non-empty")
        peak = max(utilizations.values())
        if peak <= 0:
            raise ValueError("at least one resource must have positive utilization")
        demands: List[float] = []
        servers: List[int] = []
        for name, utilization in utilizations.items():
            if utilization < significance * peak:
                continue
            count = 1 if counts is None else counts.get(name, 1)
            for _ in range(count):
                demands.append(utilization / peak)
                servers.append(1)
        return cls(demands, servers)

    # -- queries ------------------------------------------------------------------

    def _solve(self, population: int):
        if self._cache is None or population > self._cache_population:
            self._cache = mva(self.stations, population)
            self._cache_population = population
        return self._cache

    def throughput(self, mpl: int) -> float:
        """Absolute model throughput at the given MPL."""
        return self._solve(mpl).throughput(mpl)

    def relative_throughput(self, mpl: int) -> float:
        """Throughput at ``mpl`` as a fraction of the asymptotic maximum."""
        return self._solve(mpl).relative_throughput(mpl)

    def throughput_curve(self, max_mpl: int) -> List[float]:
        """Absolute throughputs for MPL = 1..``max_mpl``."""
        result = self._solve(max_mpl)
        return [result.throughput(n) for n in range(1, max_mpl + 1)]

    def min_mpl_for_fraction(self, fraction: float, max_mpl: int = 4096) -> int:
        """Lowest MPL achieving ``fraction`` of maximum throughput.

        Binary search over the (monotone) relative-throughput curve,
        exactly as §4.1 suggests.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction!r}")
        result = self._solve(max_mpl)
        low, high = 1, max_mpl
        if result.relative_throughput(high) < fraction:
            raise ValueError(
                f"fraction {fraction} unreachable within max_mpl={max_mpl}"
            )
        while low < high:
            mid = (low + high) // 2
            if result.relative_throughput(mid) >= fraction:
                high = mid
            else:
                low = mid + 1
        return low


def balanced_min_mpl(num_resources: int, fraction: float) -> int:
    """Closed-form minimum MPL for the balanced model.

    ``X(n)/X_max = n / (n + M - 1) >= f  ⇔  n >= f (M - 1) / (1 - f)``
    — linear in M, the straight lines of Figure 7.
    """
    if num_resources < 1:
        raise ValueError(f"num_resources must be >= 1, got {num_resources!r}")
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"fraction must be in (0, 1), got {fraction!r}")
    import math

    needed = fraction * (num_resources - 1) / (1.0 - fraction)
    return max(1, math.ceil(needed - 1e-9))
