"""Textbook single-queue reference formulas.

Used to anchor the QBD model (MPL = 1 must match Pollaczek–Khinchine,
MPL → ∞ must match PS) and by the tuner's open-system reasoning.
"""

from __future__ import annotations



def _check_load(load: float) -> None:
    if not 0.0 <= load < 1.0:
        raise ValueError(f"load must be in [0, 1), got {load!r}")


def mm1_response_time(arrival_rate: float, service_mean: float) -> float:
    """M/M/1 mean response time E[T] = E[S] / (1 - ρ)."""
    load = arrival_rate * service_mean
    _check_load(load)
    return service_mean / (1.0 - load)


def mg1_fifo_response_time(
    arrival_rate: float, service_mean: float, service_scv: float
) -> float:
    """M/G/1 FIFO mean response time (Pollaczek–Khinchine).

    ``E[T] = E[S] + λ E[S²] / (2 (1 - ρ))`` with
    ``E[S²] = (C² + 1) E[S]²`` — directly sensitive to job-size
    variability, which is why a too-low MPL hurts variable workloads
    (§3.2).
    """
    if service_scv < 0:
        raise ValueError(f"service_scv must be non-negative, got {service_scv!r}")
    load = arrival_rate * service_mean
    _check_load(load)
    second_moment = (service_scv + 1.0) * service_mean**2
    return service_mean + arrival_rate * second_moment / (2.0 * (1.0 - load))


def mg1_ps_response_time(arrival_rate: float, service_mean: float) -> float:
    """M/G/1 PS mean response time — insensitive to the C² entirely."""
    load = arrival_rate * service_mean
    _check_load(load)
    return service_mean / (1.0 - load)


def erlang_c(servers: int, offered: float) -> float:
    """Erlang-C probability of waiting in an M/M/k queue.

    ``offered`` is λ E[S] (in erlangs); requires offered < servers.
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers!r}")
    if not 0.0 <= offered < servers:
        raise ValueError(f"need 0 <= offered < servers, got {offered!r}")
    if offered == 0.0:
        return 0.0
    load = offered / servers
    term = 1.0
    total = 1.0  # j = 0 term
    for j in range(1, servers):
        term *= offered / j
        total += term
    term *= offered / servers
    tail = term / (1.0 - load)
    return tail / (total + tail)


def mmk_response_time(arrival_rate: float, service_mean: float, servers: int) -> float:
    """M/M/k mean response time via Erlang-C."""
    offered = arrival_rate * service_mean
    probability_wait = erlang_c(servers, offered)
    load = offered / servers
    wait = probability_wait * service_mean / (servers * (1.0 - load))
    return service_mean + wait
