"""The FIFO → PS(MPL) queueing model of §4.2 (Figures 8–10).

An unbounded FIFO queue feeds a processor-sharing server that admits at
most MPL jobs; job sizes are two-phase hyperexponential (H2) so the
variability C² can be dialled arbitrarily.  Following the paper, the
system is recast as a *flexible multiserver queue*: the number of
busy "servers" floats between 1 and MPL while the total service rate
stays that of the single PS server.  The state is (n, i) with n jobs
in the system and i phase-1 jobs among the min(n, MPL) in service —
exactly the CTMC of Figure 9 — and the repeating structure for
n ≥ MPL makes it a QBD solved by matrix-geometric methods.

Sanity anchors (enforced by the test suite):

* MPL = 1 reduces to M/G/1-FIFO → matches Pollaczek–Khinchine.
* MPL → ∞ approaches M/G/1-PS → mean response time E[S]/(1-ρ),
  insensitive to C².
* C² = 1 is M/M/1 at every MPL (exponential sizes make the MPL
  irrelevant for the mean).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.queueing.qbd import compute_rate_matrix, geometric_tail_sums


def h2_params(mean: float, scv: float) -> Tuple[float, float, float]:
    """Balanced-means H2 parameters (p, mu1, mu2) for a mean and C².

    For ``scv == 1`` this degenerates to the exponential
    (p = 1, mu1 = mu2 = 1/mean); ``scv < 1`` is not representable by
    an H2 and raises.
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean!r}")
    if scv < 1.0 - 1e-12:
        raise ValueError(f"an H2 requires scv >= 1, got {scv!r}")
    if abs(scv - 1.0) < 1e-12:
        rate = 1.0 / mean
        return 1.0, rate, rate
    p = 0.5 * (1.0 + math.sqrt((scv - 1.0) / (scv + 1.0)))
    mu1 = 2.0 * p / mean
    mu2 = 2.0 * (1.0 - p) / mean
    return p, mu1, mu2


class MplPsQueue:
    """M/H2 FIFO queue feeding an MPL-limited PS server.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate λ.
    mpl:
        Maximum jobs sharing the PS server.
    service_mean / service_scv:
        Job-size moments (fitted to a balanced-means H2), or pass the
        raw ``(p, mu1, mu2)`` triple instead.
    """

    def __init__(
        self,
        arrival_rate: float,
        mpl: int,
        service_mean: Optional[float] = None,
        service_scv: Optional[float] = None,
        p: Optional[float] = None,
        mu1: Optional[float] = None,
        mu2: Optional[float] = None,
    ):
        if arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be positive, got {arrival_rate!r}")
        if mpl < 1:
            raise ValueError(f"mpl must be >= 1, got {mpl!r}")
        if p is None:
            if service_mean is None or service_scv is None:
                raise ValueError(
                    "provide either (service_mean, service_scv) or (p, mu1, mu2)"
                )
            p, mu1, mu2 = h2_params(service_mean, service_scv)
        assert mu1 is not None and mu2 is not None
        if not 0.0 < p <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {p!r}")
        self.arrival_rate = float(arrival_rate)
        self.mpl = int(mpl)
        self.p = float(p)
        self.q = 1.0 - self.p
        self.mu1 = float(mu1)
        self.mu2 = float(mu2)
        self._solution: Optional[Tuple[List[np.ndarray], np.ndarray]] = None

    # -- basic quantities ------------------------------------------------------

    @property
    def service_mean(self) -> float:
        """E[S] of the H2 job size."""
        return self.p / self.mu1 + self.q / self.mu2

    @property
    def service_second_moment(self) -> float:
        """E[S²] of the H2 job size."""
        return 2.0 * self.p / self.mu1**2 + 2.0 * self.q / self.mu2**2

    @property
    def service_scv(self) -> float:
        """C² of the H2 job size."""
        m = self.service_mean
        return self.service_second_moment / m**2 - 1.0

    @property
    def load(self) -> float:
        """Offered load ρ = λ E[S]; must be < 1 for stability."""
        return self.arrival_rate * self.service_mean

    # -- generator blocks -----------------------------------------------------

    def _service_rates(self, in_service: int, phase1: int) -> Tuple[float, float]:
        """Total completion rates (phase-1, phase-2) with PS sharing."""
        if in_service == 0:
            return 0.0, 0.0
        share = 1.0 / in_service
        return phase1 * self.mu1 * share, (in_service - phase1) * self.mu2 * share

    def repeating_blocks(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(A0, A1, A2) of the repeating portion (levels n ≥ MPL)."""
        m = self.mpl
        lam, prob_p, prob_q = self.arrival_rate, self.p, self.q
        size = m + 1
        a0 = lam * np.eye(size)
        a1 = np.zeros((size, size))
        a2 = np.zeros((size, size))
        for i in range(size):
            rate1, rate2 = self._service_rates(m, i)
            a1[i, i] = -(lam + rate1 + rate2)
            # phase-1 completion: i -> i-1, promoted job phase-1 w.p. p
            if i > 0:
                a2[i, i] += rate1 * prob_p
                a2[i, i - 1] += rate1 * prob_q
            # phase-2 completion: i unchanged, promoted phase-1 w.p. p
            if i < m:
                a2[i, i + 1] += rate2 * prob_p
            a2[i, i] += rate2 * prob_q
        return a0, a1, a2

    def boundary_up(self, level: int) -> np.ndarray:
        """Arrival block from boundary level ``level`` (< MPL)."""
        size = level + 1
        up = np.zeros((size, size + 1))
        for i in range(size):
            up[i, i + 1] = self.arrival_rate * self.p
            up[i, i] += self.arrival_rate * self.q
        return up

    def boundary_down(self, level: int) -> np.ndarray:
        """Completion block from boundary level ``level`` (1..MPL)."""
        size = level + 1
        down = np.zeros((size, level))
        for i in range(size):
            rate1, rate2 = self._service_rates(level, i)
            if i > 0:
                down[i, i - 1] = rate1
            if i < level:
                down[i, i] = rate2
        return down

    def boundary_local(self, level: int) -> np.ndarray:
        """Diagonal local block at boundary level ``level`` (< MPL)."""
        size = level + 1
        local = np.zeros((size, size))
        for i in range(size):
            rate1, rate2 = self._service_rates(level, i)
            local[i, i] = -(self.arrival_rate + rate1 + rate2)
        return local

    # -- solution ------------------------------------------------------------------

    def solve(self) -> Tuple[List[np.ndarray], np.ndarray]:
        """Stationary vectors (boundary levels 0..MPL, and R).

        Returns ``(pis, R)`` where ``pis[n]`` is the stationary vector
        of level n for n = 0..MPL and levels beyond follow
        ``pi_{MPL+j} = pi_MPL R^j``.
        """
        if self._solution is not None:
            return self._solution
        if self.load >= 1.0:
            raise ValueError(f"unstable: offered load {self.load:.3f} >= 1")
        m = self.mpl
        a0, a1, a2 = self.repeating_blocks()
        rate_matrix = compute_rate_matrix(a0, a1, a2)

        sizes = [n + 1 for n in range(m + 1)]
        offsets = [0]
        for s in sizes:
            offsets.append(offsets[-1] + s)
        total = offsets[-1]

        balance = np.zeros((total, total))

        def add(row_level: int, col_level: int, block: np.ndarray) -> None:
            r0, c0 = offsets[row_level], offsets[col_level]
            balance[r0 : r0 + block.shape[0], c0 : c0 + block.shape[1]] += block

        for n in range(m):
            add(n, n, self.boundary_local(n))
            add(n, n + 1, self.boundary_up(n))
        for n in range(1, m + 1):
            add(n, n - 1, self.boundary_down(n))
        # level m local, folding in the geometric tail: A1 + R A2
        add(m, m, a1 + rate_matrix @ a2)
        # level m up-flow is already accounted for inside A1's -λ terms;
        # the inflow from level m+1 is the R A2 term above.

        # pi Q = 0  →  Q^T pi^T = 0; replace one equation with the
        # normalization sum(levels<m) + pi_m (I - R)^-1 1 = 1.
        inv1, _inv2 = geometric_tail_sums(rate_matrix)
        system = balance.T.copy()
        weights = np.ones(total)
        weights[offsets[m] :] = inv1.sum(axis=1)
        system[-1, :] = weights
        rhs = np.zeros(total)
        rhs[-1] = 1.0
        solution, *_ = np.linalg.lstsq(system, rhs, rcond=None)
        solution = np.maximum(solution, 0.0)
        # renormalize to wash out lstsq round-off
        norm = float(weights @ solution)
        solution /= norm

        pis = [solution[offsets[n] : offsets[n + 1]] for n in range(m + 1)]
        self._solution = (pis, rate_matrix)
        return self._solution

    def level_probabilities(self, max_level: int) -> List[float]:
        """P(N = n) for n = 0..``max_level``."""
        pis, rate_matrix = self.solve()
        m = self.mpl
        probabilities = []
        power = np.eye(m + 1)
        for n in range(max_level + 1):
            if n < m:
                probabilities.append(float(pis[n].sum()))
            else:
                probabilities.append(float((pis[m] @ power).sum()))
                power = power @ rate_matrix
        return probabilities

    def mean_number_in_system(self) -> float:
        """E[N] including jobs waiting in the FIFO queue."""
        pis, rate_matrix = self.solve()
        m = self.mpl
        total = sum(n * float(pis[n].sum()) for n in range(m))
        inv1, inv2 = geometric_tail_sums(rate_matrix)
        # sum_j (m + j) pi_m R^j 1 = m pi_m (I-R)^-1 1 + pi_m R (I-R)^-2 1
        tail_mass = pis[m] @ inv1
        tail_extra = pis[m] @ (rate_matrix @ inv2)
        total += m * float(tail_mass.sum()) + float(tail_extra.sum())
        return total

    def mean_response_time(self) -> float:
        """E[T] by Little's law."""
        return self.mean_number_in_system() / self.arrival_rate

    # -- references -----------------------------------------------------------------

    def ps_reference(self) -> float:
        """M/G/1-PS mean response time (the MPL → ∞ limit)."""
        return self.service_mean / (1.0 - self.load)

    def fifo_reference(self) -> float:
        """M/G/1-FIFO (Pollaczek–Khinchine) mean response time (MPL = 1)."""
        waiting = (
            self.arrival_rate * self.service_second_moment / (2.0 * (1.0 - self.load))
        )
        return self.service_mean + waiting
