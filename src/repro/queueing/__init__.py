"""Queueing-theoretic models (§4 of the paper).

* :mod:`repro.queueing.mva` — exact Mean Value Analysis for closed
  networks, including load-dependent (multi-server) stations.
* :mod:`repro.queueing.throughput_model` — the Figure 6/7 model:
  throughput vs MPL as a function of the number of utilized
  resources, plus the minimum-MPL search the tuner uses.
* :mod:`repro.queueing.qbd` — matrix-geometric solver for
  quasi-birth-death CTMCs.
* :mod:`repro.queueing.mpl_ps_queue` — the Figure 8/9 model: an
  unbounded FIFO queue feeding a PS server that admits at most MPL
  jobs, with hyperexponential (H2) job sizes; yields mean response
  time vs MPL (Figure 10).
* :mod:`repro.queueing.mg1` — M/M/1, M/G/1-FIFO (Pollaczek–Khinchine),
  M/G/1-PS and M/M/k reference formulas.
"""

from repro.queueing.mg1 import (
    mg1_fifo_response_time,
    mg1_ps_response_time,
    mm1_response_time,
    mmk_response_time,
)
from repro.queueing.mpl_ps_queue import MplPsQueue, h2_params
from repro.queueing.mva import MvaResult, Station, mva
from repro.queueing.qbd import compute_rate_matrix
from repro.queueing.throughput_model import ThroughputModel

__all__ = [
    "MplPsQueue",
    "MvaResult",
    "Station",
    "ThroughputModel",
    "compute_rate_matrix",
    "h2_params",
    "mg1_fifo_response_time",
    "mg1_ps_response_time",
    "mm1_response_time",
    "mmk_response_time",
    "mva",
]
