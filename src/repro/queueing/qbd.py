"""Matrix-geometric machinery for quasi-birth-death CTMCs.

The paper analyzes its flexible-multiserver chain (Figure 9) with
matrix-analytic methods [Latouche & Ramaswami; Neuts].  A QBD's
stationary vector beyond the boundary is geometric,
``pi_{k+1} = pi_k R``, where the rate matrix R is the minimal
non-negative solution of

    A0 + R A1 + R^2 A2 = 0

with A0/A1/A2 the up/local/down transition blocks of the repeating
portion.  :func:`compute_rate_matrix` finds R by the classic fixed
point iteration; helpers compute the geometric tail sums needed for
normalization and mean queue lengths.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class QbdConvergenceError(RuntimeError):
    """The R iteration failed to converge (chain unstable or ill-posed)."""


def compute_rate_matrix(
    a0: np.ndarray,
    a1: np.ndarray,
    a2: np.ndarray,
    tolerance: float = 1e-12,
    max_iterations: int = 200_000,
) -> np.ndarray:
    """Solve ``A0 + R A1 + R^2 A2 = 0`` for the minimal R ≥ 0.

    Uses the natural fixed point ``R ← -(A0 + R² A2) A1⁻¹`` starting
    from 0, which converges monotonically for irreducible positive
    recurrent QBDs.
    """
    a0 = np.asarray(a0, dtype=float)
    a1 = np.asarray(a1, dtype=float)
    a2 = np.asarray(a2, dtype=float)
    size = a0.shape[0]
    for block in (a0, a1, a2):
        if block.shape != (size, size):
            raise ValueError("A0, A1, A2 must be square and equally sized")
    a1_inv = np.linalg.inv(a1)
    r = np.zeros((size, size))
    for _ in range(max_iterations):
        r_next = -(a0 + r @ r @ a2) @ a1_inv
        delta = np.max(np.abs(r_next - r))
        r = r_next
        if delta < tolerance:
            spectral_radius = max(abs(np.linalg.eigvals(r)))
            if spectral_radius >= 1.0 - 1e-9:
                raise QbdConvergenceError(
                    f"R has spectral radius {spectral_radius:.6f} >= 1; "
                    "the chain is not positive recurrent (offered load too high?)"
                )
            return r
    raise QbdConvergenceError(
        f"R iteration did not converge within {max_iterations} steps"
    )


def geometric_tail_sums(r: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(I - R)^-1`` and ``(I - R)^-2`` for tail accounting.

    With ``pi_{b+j} = pi_b R^j``:

    * total tail probability = ``pi_b (I - R)^-1 1``
    * sum of ``j * R^j``      = ``R (I - R)^-2`` (for mean levels).
    """
    size = r.shape[0]
    identity = np.eye(size)
    inv1 = np.linalg.inv(identity - r)
    return inv1, inv1 @ inv1


def validate_generator_rows(blocks_row_sum: np.ndarray, tolerance: float = 1e-8) -> None:
    """Assert a generator's row sums vanish (used by model unit tests)."""
    worst = float(np.max(np.abs(blocks_row_sum)))
    if worst > tolerance:
        raise ValueError(f"generator rows sum to {worst:.3e}, expected 0")
