"""E-commerce prioritization: make the big spenders fast (paper §5).

An online store's database backend serves 100 concurrent clients; 10%
of transactions come from high-value customers.  We tune the MPL for
at most 5% throughput loss, dispatch the external queue
highest-priority-first, and compare against the untouched system.

Run with:  python examples/ecommerce_priority.py
"""

from repro import SystemConfig, Thresholds, get_setup
from repro.core.tuner import MplTuner
from repro.priority.evaluation import evaluate_external_prioritization


def main() -> None:
    setup = get_setup(3)  # TPC-W browsing: the paper's e-commerce case
    print(f"Scenario: {setup.describe()}, 10% of transactions are VIPs")
    print()

    base_config = SystemConfig(
        workload=setup.workload,
        hardware=setup.hardware,
        isolation=setup.isolation,
        seed=7,
    )

    print("Step 1 - tune the MPL (queueing models + feedback controller)...")
    tuner = MplTuner(
        base_config,
        thresholds=Thresholds(max_throughput_loss=0.05),
        baseline_transactions=800,
    )
    tuning = tuner.tune()
    print(
        f"  model suggested MPL {tuning.initial_mpl}; controller settled on "
        f"{tuning.final_mpl} after {tuning.report.iterations} iterations"
    )
    print()

    print("Step 2 - run with priority dispatch at the tuned MPL...")
    outcome = evaluate_external_prioritization(
        setup, mpl=tuning.final_mpl, transactions=2000, seed=7
    )
    print(f"  VIP mean response time : {outcome.high:7.2f} s")
    print(f"  standard response time : {outcome.low:7.2f} s")
    print(f"  no-prioritization ref. : {outcome.no_prio:7.2f} s")
    print()
    print(f"  VIPs fare {outcome.differentiation:.1f}x better than standard traffic;")
    print(
        f"  standard traffic pays only {100 * (outcome.low_penalty - 1):.0f}% over "
        "the unprioritized system,"
    )
    print(f"  and total throughput lost: {100 * outcome.throughput_loss:.1f}%.")


if __name__ == "__main__":
    main()
