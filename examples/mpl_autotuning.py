"""Watch the MPL controller converge (paper §4.3) — Scenario API.

The whole experiment is one declarative spec: a `FeedbackMpl` control
spec on the balanced CPU+I/O setup (setup 12, where the right MPL is
least obvious).  The *system* measures the no-MPL baseline, jump-starts
from the queueing models (`initial_mpl=None`), and runs the feedback
loop — no controller construction here; the spec is the experiment,
and the same JSON (printed below) runs unchanged via

    python -m repro.experiments scenario run spec.json

Run with:  python examples/mpl_autotuning.py
"""

from repro.core.scenario import (
    FeedbackMpl,
    MeasurementSpec,
    ScenarioSpec,
    WorkloadRef,
    execute_scenario,
)
from repro import get_setup

SETUP = 12  # W_CPU+IO-inventory on 2 CPUs + 4 disks


def main() -> None:
    print(f"Tuning {get_setup(SETUP).describe()}")
    print("DBA thresholds: <= 5% throughput loss, <= 30% mean-RT increase")

    scenario = ScenarioSpec(
        workload=WorkloadRef(setup_id=SETUP),
        control=FeedbackMpl(
            max_throughput_loss=0.05,
            max_response_time_increase=0.30,
            initial_mpl=None,  # jump-start from the queueing models
            window=100,
            baseline_transactions=1200,
        ),
        measurement=MeasurementSpec(transactions=600),
        seed=21,
    )
    print("\nscenario JSON (feed this to `scenario run`):")
    print(scenario.to_json(indent=2))
    print()

    outcome = execute_scenario(scenario)
    report = outcome.control

    print(f"{'iter':>4} | {'MPL':>4} | {'window':>6} | {'tput':>7} | "
          f"{'loss':>6} | {'RT+':>6} | feasible")
    print("-" * 58)
    for index, obs in enumerate(report.trajectory, start=1):
        print(
            f"{index:>4} | {obs.mpl:>4} | {obs.completed:>6} | "
            f"{obs.throughput:5.1f}/s | {obs.throughput_loss:5.1%} | "
            f"{obs.response_time_increase:5.1%} | {obs.feasible}"
        )
    print("-" * 58)
    print(
        f"converged={report.converged} after {report.iterations} iterations; "
        f"final MPL = {report.final_mpl}"
    )
    print(
        f"post-tuning window: {outcome.result.throughput:.1f} tx/s, "
        f"{outcome.result.mean_response_time:.2f} s mean RT"
    )
    print()
    print("Only ~%d of the 100 clients ever run inside the DBMS; the rest" %
          report.final_mpl)
    print("wait in the external queue where they can be scheduled freely.")


if __name__ == "__main__":
    main()
