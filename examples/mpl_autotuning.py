"""Watch the MPL controller converge (paper §4.3).

Builds the balanced CPU+I/O setup on the big machine (setup 12, where
the right MPL is least obvious), jump-starts the controller from the
queueing models, and prints every observation/reaction iteration.

Run with:  python examples/mpl_autotuning.py
"""

from repro import SystemConfig, Thresholds, get_setup
from repro.core.tuner import MplTuner


def main() -> None:
    setup = get_setup(12)  # W_CPU+IO-inventory on 2 CPUs + 4 disks
    print(f"Tuning {setup.describe()}")
    print("DBA thresholds: <= 5% throughput loss, <= 30% mean-RT increase")
    print()

    config = SystemConfig(
        workload=setup.workload,
        hardware=setup.hardware,
        isolation=setup.isolation,
        seed=21,
    )
    tuner = MplTuner(config, thresholds=Thresholds(), baseline_transactions=1200)
    result = tuner.tune()

    print(f"baseline (no MPL): {result.baseline.throughput:.1f} tx/s, "
          f"{result.baseline.mean_response_time:.2f} s mean RT")
    print(f"model jump-start : throughput model -> MPL {result.model_mpl_throughput}, "
          f"response-time model -> MPL {result.model_mpl_response_time}")
    print()
    print(f"{'iter':>4} | {'MPL':>4} | {'window':>6} | {'tput':>7} | "
          f"{'loss':>6} | {'RT+':>6} | feasible")
    print("-" * 58)
    for index, obs in enumerate(result.report.trajectory, start=1):
        print(
            f"{index:>4} | {obs.mpl:>4} | {obs.completed:>6} | "
            f"{obs.throughput:5.1f}/s | {obs.throughput_loss:5.1%} | "
            f"{obs.response_time_increase:5.1%} | {obs.feasible}"
        )
    print("-" * 58)
    print(
        f"converged={result.report.converged} after "
        f"{result.report.iterations} iterations; final MPL = {result.final_mpl}"
    )
    print()
    print("Only ~%d of the 100 clients ever run inside the DBMS; the rest" %
          result.final_mpl)
    print("wait in the external queue where they can be scheduled freely.")


if __name__ == "__main__":
    main()
