"""Quickstart: external scheduling with an MPL on a TPC-C-like system.

Runs Table 2's setup 1 (the CPU-bound TPC-C workload on one CPU and
one disk) at several multiprogramming limits and shows the paper's
core trade-off: a low MPL barely costs throughput, while leaving most
transactions in the externally schedulable queue.

Run with:  python examples/quickstart.py
"""

from repro import SimulatedSystem, SystemConfig, get_setup


def main() -> None:
    setup = get_setup(1)
    print(f"Running {setup.describe()}")
    print(f"{'MPL':>9} | {'throughput':>10} | {'mean RT':>8} | {'ext. queue wait':>15}")
    print("-" * 55)
    for mpl in (1, 2, 5, 10, 20, None):
        config = SystemConfig(
            workload=setup.workload,
            hardware=setup.hardware,
            isolation=setup.isolation,
            mpl=mpl,
            seed=42,
        )
        result = SimulatedSystem(config).run(transactions=1500)
        label = "unlimited" if mpl is None else str(mpl)
        print(
            f"{label:>9} | {result.throughput:7.1f}/s | "
            f"{result.mean_response_time:6.2f} s | "
            f"{result.mean_external_wait:13.2f} s"
        )
    print()
    print("An MPL of ~5 already delivers near-maximal throughput while")
    print("keeping ~95 of the 100 clients in the external queue, where a")
    print("scheduler can reorder them at will (the point of the paper).")


if __name__ == "__main__":
    main()
