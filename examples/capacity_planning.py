"""Capacity planning with the queueing models alone (paper §4.1-4.2).

No simulation here - just the analytic models, answering two questions
a DBA faces when sizing an external scheduler:

1. How does the throughput-safe minimum MPL grow as I add disks?
   (Figure 7: linearly.)
2. How does workload variability move the response-time-safe MPL?
   (Figure 10: C^2 = 15 needs 10-30 depending on load.)

Run with:  python examples/capacity_planning.py
"""

from repro import MplPsQueue
from repro.queueing.mg1 import mg1_ps_response_time
from repro.queueing.throughput_model import balanced_min_mpl


def throughput_question() -> None:
    print("Q1: minimum MPL that keeps throughput within 5% / 20% of max")
    print()
    print(f"{'disks':>6} | {'MPL for 80% max':>15} | {'MPL for 95% max':>15}")
    print("-" * 44)
    for disks in (1, 2, 3, 4, 8, 16):
        print(
            f"{disks:>6} | {balanced_min_mpl(disks, 0.80):>15} | "
            f"{balanced_min_mpl(disks, 0.95):>15}"
        )
    print()
    print("Both columns are exactly linear in the disk count -")
    print("min MPL = f (M - 1) / (1 - f) - the paper's Figure 7 lines.")
    print()


def response_time_question() -> None:
    print("Q2: minimum MPL that keeps mean RT within 10% of the PS ideal")
    print()
    service_mean = 0.050  # 50 ms transactions
    print(f"{'C^2':>5} | {'load 0.7':>9} | {'load 0.9':>9}")
    print("-" * 30)
    for scv in (1.0, 2.0, 5.0, 10.0, 15.0):
        row = []
        for load in (0.7, 0.9):
            arrival_rate = load / service_mean
            target = 1.10 * mg1_ps_response_time(arrival_rate, service_mean)
            needed = None
            for mpl in range(1, 81):
                model = MplPsQueue(
                    arrival_rate=arrival_rate, mpl=mpl,
                    service_mean=service_mean, service_scv=scv,
                )
                if model.mean_response_time() <= target:
                    needed = mpl
                    break
            row.append(needed)
        print(f"{scv:>5.0f} | {row[0]:>9} | {row[1]:>9}")
    print()
    print("Low-variability workloads are MPL-insensitive; C^2 = 15 needs an")
    print("MPL of ~10 at load 0.7 and ~30 at 0.9 - the paper's Figure 10.")


def main() -> None:
    throughput_question()
    response_time_question()


if __name__ == "__main__":
    main()
