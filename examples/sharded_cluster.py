"""Scale the external-scheduling result out to a sharded cluster.

Builds a 4-shard cluster from one base config: partly-open traffic
hits a router that dispatches each transaction to a shard, and the
global MPL is split across the per-shard external schedulers.  The
demo compares the four routing policies at the same offered load and
then re-splits the MPL on the fly, the way a cluster operator (or the
per-shard feedback controllers) would.

Run:  PYTHONPATH=src python examples/sharded_cluster.py
"""

from repro.core.arrivals import PartlyOpenArrivals
from repro.core.cluster import ClusterConfig, ClusteredSystem
from repro.core.system import SystemConfig
from repro.sim.station import ROUTING_POLICIES
from repro.workloads.setups import get_setup

SHARDS = 4
PER_SHARD_RATE = 40.0  # tx/s offered per shard (~60% of capacity)

setup = get_setup(1)
base = SystemConfig(
    workload=setup.workload,
    hardware=setup.hardware,
    isolation=setup.isolation,
    mpl=8 * SHARDS,  # global MPL, split across the shards
    seed=11,
    arrival=PartlyOpenArrivals.for_load(
        PER_SHARD_RATE * SHARDS, 4.0, think_time_s=0.1
    ),
)

print(f"== {SHARDS}-shard cluster, {PER_SHARD_RATE * SHARDS:.0f} tx/s offered ==")
for routing in ROUTING_POLICIES:
    config = ClusterConfig.scale_out(base, SHARDS, routing=routing)
    system = ClusteredSystem(config)
    result = system.run(transactions=400)
    spread = system.router.routed_by_shard
    print(
        f"{routing:16s} throughput {result.throughput:6.1f} tx/s   "
        f"mean RT {result.mean_response_time * 1000:6.1f} ms   "
        f"routed per shard {spread}"
    )

print("\n== re-splitting the global MPL on a live cluster ==")
system = ClusteredSystem(ClusterConfig.scale_out(base, SHARDS, routing="least_in_flight"))
system.run_transactions(200)
for global_mpl in (8, 16, 48):
    split = system.scheduler.set_global_mpl(global_mpl)
    window = system.run_transactions(200)
    elapsed = window[-1].completion_time - window[0].completion_time
    throughput = (len(window) - 1) / elapsed if elapsed > 0 else 0.0
    print(f"global MPL {global_mpl:3d} -> per-shard {split}  "
          f"window throughput {throughput:6.1f} tx/s")

print("\nOne-shard clusters are bit-identical to the plain engine, so this "
      "topology is a pure superset of the paper's single-DBMS result.")
