"""Scale the external-scheduling result out to a sharded cluster —
Scenario API.

One declarative spec per cell: partly-open traffic × a 4-shard
topology × a static global MPL.  The demo sweeps the four routing
policies by swapping only the `TopologySpec`, then drops down to the
live system (`build_system` accepts a scenario directly) to re-split
the global MPL on the fly, the way a cluster operator (or the
per-shard feedback controllers) would.

Run:  PYTHONPATH=src python examples/sharded_cluster.py
"""

import dataclasses

from repro.core.arrivals import PartlyOpenArrivals
from repro.core.cluster import build_system
from repro.core.scenario import (
    MeasurementSpec,
    ScenarioSpec,
    StaticMpl,
    TopologySpec,
    WorkloadRef,
    execute_scenario,
)
from repro.sim.station import ROUTING_POLICIES

SHARDS = 4
PER_SHARD_RATE = 40.0  # tx/s offered per shard (~60% of capacity)

base = ScenarioSpec(
    workload=WorkloadRef(setup_id=1),
    arrival=PartlyOpenArrivals.for_load(
        PER_SHARD_RATE * SHARDS, 4.0, think_time_s=0.1
    ),
    topology=TopologySpec(shards=SHARDS),
    control=StaticMpl(8 * SHARDS),  # global MPL, split across the shards
    measurement=MeasurementSpec(transactions=400),
    seed=11,
)

print(f"== {SHARDS}-shard cluster, {PER_SHARD_RATE * SHARDS:.0f} tx/s offered ==")
for routing in ROUTING_POLICIES:
    scenario = dataclasses.replace(
        base, topology=TopologySpec(shards=SHARDS, routing=routing)
    )
    outcome = execute_scenario(scenario)
    print(
        f"{routing:16s} throughput {outcome.result.throughput:6.1f} tx/s   "
        f"mean RT {outcome.result.mean_response_time * 1000:6.1f} ms   "
        f"fingerprint {outcome.fingerprint[:12]}"
    )

print("\n== re-splitting the global MPL on a live cluster ==")
system = build_system(
    dataclasses.replace(
        base, topology=TopologySpec(shards=SHARDS, routing="least_in_flight")
    )
)
system.run_transactions(200)
for global_mpl in (8, 16, 48):
    split = system.scheduler.set_global_mpl(global_mpl)
    window = system.run_transactions(200)
    elapsed = window[-1].completion_time - window[0].completion_time
    throughput = (len(window) - 1) / elapsed if elapsed > 0 else 0.0
    print(f"global MPL {global_mpl:3d} -> per-shard {split}  "
          f"window throughput {throughput:6.1f} tx/s")

print("\nOne-shard clusters are bit-identical to the plain engine, so this "
      "topology is a pure superset of the paper's single-DBMS result.")
