"""Open-system response time vs MPL: simulation meets the Markov model.

Reproduces the paper's §3.2/§4.2 story on one plot-worth of numbers:
Poisson arrivals at 70% load into an MPL-limited server, once with
low-variability work (C^2 = 1) and once with TPC-W-like variability
(C^2 = 15).  The CTMC model's predictions are printed alongside the
simulated measurements.

Run with:  python examples/open_system_response_time.py
"""

from repro import HardwareConfig, MplPsQueue, SimulatedSystem, SystemConfig
from repro.workloads.synthetic import synthetic_workload

SERVICE_MEAN_MS = 20.0
LOAD = 0.7


def measure(scv: float, mpl: int) -> float:
    workload = synthetic_workload("open", demand_mean_ms=SERVICE_MEAN_MS, scv=scv)
    config = SystemConfig(
        workload=workload,
        hardware=HardwareConfig(num_cpus=1, num_disks=1, memory_mb=3072,
                                bufferpool_mb=1024),
        mpl=mpl,
        arrival_rate=LOAD / (SERVICE_MEAN_MS / 1000.0),
        seed=17,
    )
    result = SimulatedSystem(config).run(transactions=8000, warmup_fraction=0.1)
    return result.mean_response_time * 1000.0  # msec


def predict(scv: float, mpl: int) -> float:
    model = MplPsQueue(
        arrival_rate=LOAD / (SERVICE_MEAN_MS / 1000.0),
        mpl=mpl,
        service_mean=SERVICE_MEAN_MS / 1000.0,
        service_scv=scv,
    )
    return model.mean_response_time() * 1000.0


def main() -> None:
    print(f"Poisson arrivals at {LOAD:.0%} load, E[S] = {SERVICE_MEAN_MS:.0f} ms")
    print()
    for scv in (1.0, 15.0):
        print(f"job-size variability C^2 = {scv:g}")
        print(f"{'MPL':>5} | {'model E[T]':>11} | {'simulated':>11}")
        print("-" * 35)
        for mpl in (1, 2, 5, 10, 30):
            print(
                f"{mpl:>5} | {predict(scv, mpl):>8.0f} ms | "
                f"{measure(scv, mpl):>8.0f} ms"
            )
        print()
    print("With C^2 = 1 the MPL does not matter; with C^2 = 15 a low MPL")
    print("induces heavy head-of-line blocking - hence the paper's rule that")
    print("variability, not the bottleneck type, lower-bounds the MPL.")


if __name__ == "__main__":
    main()
